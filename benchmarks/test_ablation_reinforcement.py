"""Ablation: two-phase pull (reinforcement) vs pure flooding.

The paper's protocol sends post-exploratory data only on reinforced
paths.  Disabling reinforcement degenerates diffusion to flooding every
data message — delivery stays high (floods are redundant) but traffic
per event multiplies.  This bench quantifies the trade on the ISI
testbed, the design choice DESIGN.md calls out.
"""

import pytest

from repro.apps import SurveillanceExperiment
from repro.core import DiffusionConfig
from repro.testbed import FIG8_SINK, FIG8_SOURCES, isi_testbed_network

pytestmark = pytest.mark.slow

DURATION = 900.0


def run_variant(enable_reinforcement: bool, seed: int = 31):
    config = DiffusionConfig(enable_reinforcement=enable_reinforcement)
    net = isi_testbed_network(seed=seed, config=config)
    exp = SurveillanceExperiment(
        net, FIG8_SINK, FIG8_SOURCES[:2], suppression=False
    )
    return exp.run(duration=DURATION)


@pytest.fixture(scope="module")
def results():
    return {
        True: [run_variant(True, seed) for seed in (31, 32)],
        False: [run_variant(False, seed) for seed in (31, 32)],
    }


def mean(values):
    return sum(values) / len(values)


def test_ablation_run(benchmark, results):
    benchmark.pedantic(run_variant, args=(True, 99), rounds=1, iterations=1)
    print()
    for enabled, rs in results.items():
        label = "two-phase pull" if enabled else "pure flooding "
        print(
            f"{label}: "
            f"{mean([r.bytes_per_event for r in rs]):7.0f} B/event, "
            f"delivery {mean([r.delivery_ratio for r in rs]):.2f}"
        )
    pull = mean([r.bytes_per_event for r in results[True]])
    flood = mean([r.bytes_per_event for r in results[False]])
    assert flood > pull * 1.5


def test_flooding_costs_more_per_event(results):
    pull = mean([r.bytes_per_event for r in results[True]])
    flood = mean([r.bytes_per_event for r in results[False]])
    assert flood > pull * 1.5


def test_both_variants_deliver(results):
    for rs in results.values():
        assert mean([r.delivery_ratio for r in rs]) > 0.3
