"""Extension bench: bulk-object transfer over the radio testbed.

Paper Section 3.1 promises a "retransmission scheme for applications
that transfer large, persistent data objects"; :mod:`repro.transfer`
implements it.  This bench measures the scheme on the simulated ISI
testbed: completion, time, and repair overhead for a multi-kilobyte
object crossing the building.
"""

import hashlib

import pytest

from repro.testbed import isi_testbed_network
from repro.transfer import BlockReceiver, BlockSender, split_object

pytestmark = pytest.mark.slow

SENDER = 25
RECEIVER = 39
OBJECT_BYTES = 2048


def run_transfer(seed: int):
    net = isi_testbed_network(seed=seed)
    payload = bytes((i * 31 + seed) % 256 for i in range(OBJECT_BYTES))
    obj = split_object("obj", payload)
    completions = []
    receiver = BlockReceiver(
        net.api(RECEIVER),
        object_id=obj.object_id,
        on_complete=lambda data, stats: completions.append((data, stats)),
        quiet_timeout=6.0,
        max_repair_rounds=30,
    )
    sender = BlockSender(net.api(SENDER), block_interval=0.8)
    net.sim.schedule(2.0, sender.offer, obj, 0.0)
    net.run(until=900.0)
    return payload, obj, completions, receiver, sender


@pytest.fixture(scope="module")
def outcomes():
    return [run_transfer(seed) for seed in (13, 14)]


def test_bulk_transfer(benchmark, outcomes):
    benchmark.pedantic(run_transfer, args=(99,), rounds=1, iterations=1)
    print()
    for payload, obj, completions, receiver, sender in outcomes:
        if completions:
            data, stats = completions[0]
            print(
                f"seed ok: {obj.block_count} blocks in {stats.completed_at:.0f}s, "
                f"{stats.repair_rounds} repair rounds, "
                f"{sender.repairs_served} repairs served"
            )
        else:
            print(f"incomplete: missing {len(receiver.missing_blocks())}")
    completed = sum(1 for _, _, c, _, _ in outcomes if c)
    assert completed == len(outcomes)


def test_payload_integrity(outcomes):
    for payload, obj, completions, receiver, sender in outcomes:
        assert completions, "transfer did not complete"
        data, stats = completions[0]
        assert hashlib.sha1(data).hexdigest() == obj.checksum()


def test_repairs_bounded(outcomes):
    for payload, obj, completions, receiver, sender in outcomes:
        data, stats = completions[0]
        assert stats.repair_rounds <= 30
        # Repair traffic stays a fraction of the stream.
        assert sender.repairs_served <= obj.block_count * 2
