"""Benchmark: shard-sync profiler cost when nobody is listening.

The profiler rides along on every sharded round: promise terms are
attributed, window spans observed, barrier stall timed, and the inline
transport pickles the would-be exchange payload to report comparable
byte volume.  Under the null registry all instrument updates are
no-ops, so the only real work left is that byte counting and a pair of
``perf_counter`` reads per window.  The uninstrumented baseline stubs
exactly those hooks out; the gap is what the profiler costs a user who
never looks at it (the ISSUE's <2% criterion, asserted with headroom
for CI timing noise).
"""

import pickle
import time
import types

import pytest

from repro.shard import ShardPlan, run_sharded
from repro.shard import runner as runner_mod
from repro.sim.metrics import NULL_REGISTRY, current_registry

pytestmark = pytest.mark.slow

#: Big enough that per-round profiling work could show up, small enough
#: to repeat: 150 nodes beaconing for 10 simulated seconds, 2 shards.
PLAN = ShardPlan(
    scenario="flood", params={"columns": 15, "rows": 10},
    seed=1, duration=10.0, shards=2,
)

# Keep real clocks/pickle handles: the baseline stubs the module-level
# names the profiler hooks resolve, not the functions themselves.
_real_perf_counter = time.perf_counter
_real_pickle = runner_mod.pickle

_stub_pickle = types.SimpleNamespace(
    dumps=lambda obj, protocol=None: b"",
    HIGHEST_PROTOCOL=pickle.HIGHEST_PROTOCOL,
)


def _best_of(repeats: int = 3, stub_hooks: bool = False) -> float:
    """Best-of-N wall time: min is the noise-robust micro-timing stat."""
    best = float("inf")
    try:
        if stub_hooks:
            runner_mod.pickle = _stub_pickle
        for _ in range(repeats):
            start = _real_perf_counter()
            result = run_sharded(PLAN, transport="inline")
            best = min(best, _real_perf_counter() - start)
            assert result["outcome"]["delivered"] >= 0  # sanity
    finally:
        runner_mod.pickle = _real_pickle
    return best


def test_profiler_runs_under_null_registry():
    # The whole point of the bound below: this is the default state.
    assert current_registry() is NULL_REGISTRY
    result = run_sharded(PLAN, transport="inline")
    # The profile still fills in (stats live on ShardStats, not on the
    # registry), so observability is free but never absent.
    profile = result["profile"]
    assert profile["windows"] > 0
    assert sum(profile["windows_by_term"].values()) == profile["windows"]
    assert profile["exchange_bytes"] > 0


def test_profiler_overhead_under_two_percent():
    run_sharded(PLAN, transport="inline")  # warm imports and caches
    baseline = _best_of(stub_hooks=True)   # exchange accounting stubbed
    profiled = _best_of(stub_hooks=False)  # the shipping configuration
    overhead = profiled / baseline - 1.0
    # Criterion: <2% on a quiet machine; the asserted bound carries CI
    # headroom so only a genuine regression (instrument updates doing
    # work under the null registry, serialization on the hot path)
    # trips it.
    assert overhead < 0.10, (
        f"shard profiler cost {overhead:.1%} over a stubbed run "
        f"({profiled:.3f}s vs {baseline:.3f}s) — criterion is <2% "
        f"plus CI headroom"
    )


def test_stubbed_baseline_still_matches_outcome():
    """The baseline must be the same simulation, only unmeasured."""
    real = run_sharded(PLAN, transport="inline")
    try:
        runner_mod.pickle = _stub_pickle
        stubbed = run_sharded(PLAN, transport="inline")
    finally:
        runner_mod.pickle = _real_pickle
    assert stubbed["outcome"] == real["outcome"]
    assert all(s["exchange_bytes"] == 0 for s in stubbed["shards"])
