"""Ablation: GEAR-style geographic interest pruning (paper ref [39]).

Section 4.2: "We are currently exploring using filters to optimize
diffusion (avoiding flooding) with geographic information."  This bench
measures the optimization on a grid: interest flood transmissions with
and without the GEAR filter, for region queries of varying placement.
"""

import pytest

from repro import AttributeVector, Key, MessageType
from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.filters import GearFilter
from repro.radio import Topology
from repro.sim import Simulator
from repro.testbed import IdealNetwork

pytestmark = pytest.mark.slow

GRID = 6  # 6x6 = 36 nodes
SPACING = 10.0


def build_grid(with_gear: bool):
    topology = Topology.grid(columns=GRID, rows=GRID, spacing=SPACING)
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.005)
    nodes, apis = {}, {}
    for node_id in topology.node_ids():
        transport = net.add_node(node_id)
        nodes[node_id] = DiffusionNode(
            sim, node_id, transport,
            config=DiffusionConfig(reinforcement_jitter=0.05),
        )
        apis[node_id] = DiffusionRouting(nodes[node_id])
        if with_gear:
            GearFilter(nodes[node_id], topology, slack=2.0)
    for i in topology.node_ids():
        if i % GRID < GRID - 1:
            net.connect(i, i + 1)
        if i < GRID * (GRID - 1):
            net.connect(i, i + GRID)
    return topology, sim, net, nodes, apis


def corner_region_interest():
    """Query the bottom-left 2x2 corner from the grid center."""
    return (
        AttributeVector.builder()
        .eq(Key.TYPE, "det")
        .ge(Key.X_COORD, -1.0).le(Key.X_COORD, SPACING + 1.0)
        .ge(Key.Y_COORD, -1.0).le(Key.Y_COORD, SPACING + 1.0)
        .build()
    )


def run_flood(with_gear: bool):
    topology, sim, net, nodes, apis = build_grid(with_gear)
    center = (GRID // 2) * GRID + GRID // 2
    apis[center].subscribe(corner_region_interest(), lambda a, m: None)
    sim.run(until=3.0)
    transmissions = sum(
        n.stats.messages_by_type[MessageType.INTEREST] for n in nodes.values()
    )
    in_region = [0, 1, GRID, GRID + 1]
    reached = all(len(nodes[i].gradients) == 1 for i in in_region)
    return transmissions, reached


@pytest.fixture(scope="module")
def flood_results():
    return {"plain": run_flood(False), "gear": run_flood(True)}


def test_gear_flood_cost(benchmark, flood_results):
    benchmark.pedantic(run_flood, args=(True,), rounds=1, iterations=1)
    plain_tx, plain_ok = flood_results["plain"]
    gear_tx, gear_ok = flood_results["gear"]
    print()
    print(f"plain flooding: {plain_tx} interest transmissions (reach: {plain_ok})")
    print(f"with GEAR     : {gear_tx} interest transmissions (reach: {gear_ok})")
    print(f"pruned        : {1 - gear_tx / plain_tx:.0%}")
    assert gear_ok
    assert gear_tx < plain_tx * 0.7


def test_region_still_reached(flood_results):
    assert flood_results["gear"][1]


def test_substantial_pruning(flood_results):
    plain_tx, _ = flood_results["plain"]
    gear_tx, _ = flood_results["gear"]
    assert gear_tx < plain_tx * 0.7
