"""Ablation: one-phase push vs two-phase pull diffusion.

Paper Section 3.1 notes the diffusion paradigm is "more general" than
the query-response usage the paper evaluates.  Push mode (sources
advertise, passive sinks reinforce) trades interest-refresh traffic for
advertisement floods; this bench measures the crossover on a hub
topology as the sink:source ratio varies.
"""

import pytest

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.sim import Simulator
from repro.testbed import IdealNetwork

DURATION = 300.0

SUB = AttributeVector.builder().eq(Key.TYPE, "t").build()
PUB = AttributeVector.builder().actual(Key.TYPE, "t").build()


def run(push: bool, n_sinks: int, n_sources: int):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01)
    config = DiffusionConfig(
        push_mode=push,
        reinforcement_jitter=0.05,
        exploratory_interval=20.0,
        interest_interval=20.0,
        gradient_timeout=60.0,
        interest_jitter=0.1,
    )
    total = n_sinks + n_sources + 1
    nodes, apis = {}, {}
    for i in range(total):
        nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(nodes[i])
    hub = total - 1
    for i in range(total - 1):
        net.connect(i, hub)
    received = []
    for sink in range(n_sinks):
        apis[sink].subscribe(SUB, lambda a, m: received.append(a))
    for s in range(n_sources):
        source = n_sinks + s
        pub = apis[source].publish(PUB)
        for i in range(int(DURATION // 10)):
            sim.schedule(
                1.0 + i * 10.0, apis[source].send, pub,
                AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
            )
    sim.run(until=DURATION)
    return {
        "bytes": sum(n.stats.bytes_sent for n in nodes.values()),
        "received": len(received),
    }


@pytest.fixture(scope="module")
def grid():
    shapes = [(1, 6), (3, 3), (6, 1), (0, 6)]
    return {
        (push, sinks, sources): run(push, sinks, sources)
        for push in (False, True)
        for sinks, sources in shapes
    }


def test_push_pull_sweep(benchmark, grid):
    benchmark.pedantic(run, args=(True, 3, 3), rounds=1, iterations=1)
    print()
    print(f"{'sinks':>6} {'sources':>8} {'pull bytes':>11} {'push bytes':>11}")
    for sinks, sources in [(1, 6), (3, 3), (6, 1), (0, 6)]:
        pull = grid[(False, sinks, sources)]
        push = grid[(True, sinks, sources)]
        print(f"{sinks:>6} {sources:>8} {pull['bytes']:>11} {push['bytes']:>11}")
    # The qualitative trade-off (asserted in detail below).
    assert grid[(True, 6, 1)]["bytes"] < grid[(False, 6, 1)]["bytes"]
    assert grid[(False, 0, 6)]["bytes"] == 0


def test_push_wins_with_many_sinks(grid):
    assert grid[(True, 6, 1)]["bytes"] < grid[(False, 6, 1)]["bytes"]
    assert grid[(True, 6, 1)]["received"] >= grid[(False, 6, 1)]["received"] * 0.8


def test_pull_silent_without_subscribers(grid):
    assert grid[(False, 0, 6)]["bytes"] == 0
    assert grid[(True, 0, 6)]["bytes"] > 0


def test_both_modes_deliver(grid):
    for (push, sinks, sources), result in grid.items():
        if sinks > 0:
            assert result["received"] > 0, (push, sinks, sources)
