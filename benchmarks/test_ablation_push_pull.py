"""Ablation: one-phase push vs two-phase pull diffusion.

Paper Section 3.1 notes the diffusion paradigm is "more general" than
the query-response usage the paper evaluates.  Push mode (sources
advertise, passive sinks reinforce) trades interest-refresh traffic for
advertisement floods; this bench measures the crossover on a hub
topology as the sink:source ratio varies.

The workload lives in :mod:`repro.campaign.builtin`
(``pushpull_trial``) and runs here through the campaign subsystem, the
same path ``python -m repro campaign run ablation-push-pull`` takes.
"""

import pytest

from repro.campaign import run_campaign
from repro.campaign.builtin import pushpull_campaign, pushpull_trial

pytestmark = pytest.mark.slow

DURATION = 300.0

SHAPES = [(1, 6), (3, 3), (6, 1), (0, 6)]


def run(push: bool, n_sinks: int, n_sources: int):
    return pushpull_trial(
        {"push": push, "shape": f"{n_sinks}x{n_sources}", "duration": DURATION},
        seed=0,
    )


@pytest.fixture(scope="module")
def grid():
    report = run_campaign(pushpull_campaign())
    assert report.ok
    results = {}
    for outcome in report.outcomes:
        sinks, sources = (
            int(part) for part in outcome.spec.params["shape"].split("x")
        )
        results[(outcome.spec.params["push"], sinks, sources)] = outcome.result
    return results


def test_push_pull_sweep(benchmark, grid):
    benchmark.pedantic(run, args=(True, 3, 3), rounds=1, iterations=1)
    print()
    print(f"{'sinks':>6} {'sources':>8} {'pull bytes':>11} {'push bytes':>11}")
    for sinks, sources in SHAPES:
        pull = grid[(False, sinks, sources)]
        push = grid[(True, sinks, sources)]
        print(f"{sinks:>6} {sources:>8} {pull['bytes']:>11} {push['bytes']:>11}")
    # The qualitative trade-off (asserted in detail below).
    assert grid[(True, 6, 1)]["bytes"] < grid[(False, 6, 1)]["bytes"]
    assert grid[(False, 0, 6)]["bytes"] == 0


def test_push_wins_with_many_sinks(grid):
    assert grid[(True, 6, 1)]["bytes"] < grid[(False, 6, 1)]["bytes"]
    assert grid[(True, 6, 1)]["received"] >= grid[(False, 6, 1)]["received"] * 0.8


def test_pull_silent_without_subscribers(grid):
    assert grid[(False, 0, 6)]["bytes"] == 0
    assert grid[(True, 0, 6)]["bytes"] > 0


def test_both_modes_deliver(grid):
    for (push, sinks, sources), result in grid.items():
        if sinks > 0:
            assert result["received"] > 0, (push, sinks, sources)
