"""Benchmark: the Section 6.1 duty-cycle energy analysis.

Regenerates the paper's three claims: listen-dominated at d=1, the
50%-listen crossover near d=0.2 (paper rounds to 22%), and
send-dominance below d~0.15 ("duty cycles of 10% begin to be dominated
by send cost").  Also exercises the live energy ledgers on a simulated
run with CSMA vs TDMA duty cycles.
"""

import pytest

from repro.energy import DutyCycleModel
from repro.experiments.duty_cycle import format_table, run_duty_cycle_analysis


@pytest.fixture(scope="module")
def model():
    return DutyCycleModel()


def test_duty_cycle_table(benchmark, model):
    rows = benchmark.pedantic(run_duty_cycle_analysis, args=(model,),
                              rounds=1, iterations=1)
    print()
    print(format_table(rows))


def test_full_duty_listen_dominated(model):
    assert model.breakdown(1.0).listen_fraction > 0.8


def test_half_listen_crossover_near_paper(model):
    assert model.listen_half_duty_cycle() == pytest.approx(0.2, abs=0.05)


def test_send_dominates_at_ten_percent(model):
    b = model.breakdown(0.10)
    assert b.send > b.listen


def test_measured_run_energy_tracks_duty_cycle():
    """Energy on a live simulated run: a 10% duty-cycle MAC spends far
    less total energy than an always-listening one, with the savings
    coming out of the listen term — the paper's whole argument for
    energy-conscious MACs."""
    from repro.apps import SurveillanceExperiment
    from repro.testbed import FIG8_SINK, FIG8_SOURCES, isi_testbed_network

    net = isi_testbed_network(seed=7)
    exp = SurveillanceExperiment(net, FIG8_SINK, FIG8_SOURCES[:2])
    exp.run(duration=300.0)
    always_on = net.energy_account.total_breakdown(elapsed=300.0)

    for ledger_id in net.energy_account.node_ids():
        net.energy_account.ledger(ledger_id).duty_cycle = 0.10
    duty_cycled = net.energy_account.total_breakdown(elapsed=300.0)

    assert duty_cycled.total < always_on.total * 0.25
    assert duty_cycled.send == always_on.send
    assert duty_cycled.receive == always_on.receive
    assert always_on.listen_fraction > 0.9
