"""Benchmark: the Section 6.1 analytical traffic model.

Regenerates the paper's prediction — "a flat 990B/event" with
aggregation, "990 to 3289B/event" without as sources rise 1 to 4 — and
cross-checks the model against the simulated Figure 8 measurements the
way the paper compares model and experiment.
"""

import pytest

from repro.analysis import TrafficModel


@pytest.fixture(scope="module")
def model():
    return TrafficModel()


def test_model_table(benchmark, model):
    rows = benchmark(model.table, 4)
    print()
    print("Section 6.1 analytical model (B/event):")
    print(f"{'sources':>8} {'aggregated':>12} {'unaggregated':>14}")
    for row in rows:
        print(
            f"{row['sources']:>8} {row['aggregated']:>12.0f} "
            f"{row['unaggregated']:>14.0f}"
        )


def test_aggregated_flat_at_990(model):
    values = [model.bytes_per_event(s, True) for s in (1, 2, 3, 4)]
    assert max(values) == min(values)
    assert values[0] == pytest.approx(990, rel=0.01)


def test_unaggregated_reaches_paper_range(model):
    four = model.bytes_per_event(4, False)
    assert 3289 * 0.95 <= four <= 3450


def test_model_brackets_experiment_shape(model):
    """The paper notes the model 'underpredicts the B/event of
    aggregation and overpredicts the 4-source/no-aggregation case'
    relative to experiment because collisions 'drive bytes-per-event to
    the middle'.  Verify the same relationship against our simulated
    testbed at a reduced scale."""
    from repro.experiments.fig8_aggregation import run_fig8_trial

    measured_agg = run_fig8_trial(4, True, seed=5, duration=900.0)
    measured_noagg = run_fig8_trial(4, False, seed=5, duration=900.0)
    predicted_agg = model.bytes_per_event(4, True)
    predicted_noagg = model.bytes_per_event(4, False)
    # Model underpredicts the aggregated case...
    assert measured_agg.bytes_per_event > predicted_agg * 0.8
    # ...and overpredicts the unaggregated one.
    assert measured_noagg.bytes_per_event < predicted_noagg * 1.2
    # And the ordering matches in both worlds.
    assert predicted_agg < predicted_noagg
    assert measured_agg.bytes_per_event < measured_noagg.bytes_per_event
