"""Ablation: duty-cycled MAC — energy vs delivery trade-off.

Section 6.1 argues that without sleeping, listen energy dominates, and
that duty cycles of 10-15% change the balance entirely.  The paper
could not measure this ("we are currently experimenting with
power-aware MAC approaches"); this bench runs the measurement its
analysis predicts: the same surveillance workload over always-on CSMA
vs duty-cycled CSMA, reporting delivery and total radio energy.

The workload lives in :mod:`repro.campaign.builtin`
(``dutycycle_trial``) and runs here through the campaign subsystem,
the same path ``python -m repro campaign run ablation-dutycycle``
takes.
"""

import pytest

from repro.campaign import run_campaign
from repro.campaign.builtin import dutycycle_campaign, dutycycle_trial

pytestmark = pytest.mark.slow

DURATION = 600.0


def run_workload(duty_cycle: float, seed: int = 5):
    return dutycycle_trial(
        {"duty_cycle": duty_cycle, "duration": DURATION}, seed=seed
    )


@pytest.fixture(scope="module")
def sweep():
    report = run_campaign(dutycycle_campaign())
    assert report.ok
    return [outcome.result for outcome in report.outcomes]


def test_duty_cycle_sweep(benchmark, sweep):
    benchmark.pedantic(run_workload, args=(1.0, 99), rounds=1, iterations=1)
    print()
    print(f"{'duty':>6} {'delivery':>9} {'total energy':>13}")
    for row in sweep:
        print(
            f"{row['duty_cycle']:>6.1f} {row['delivery']:>9.2f} "
            f"{row['energy']:>13.0f}"
        )
    energies = [row["energy"] for row in sweep]
    assert all(a > b for a, b in zip(energies, energies[1:]))
    # Low duty cycles save most of the energy while the deferred-window
    # MAC keeps delivering (the windows are synchronized).
    assert sweep[-1]["energy"] < sweep[0]["energy"] * 0.25
    assert sweep[-1]["delivery"] > 0.5


def test_energy_monotone_in_duty_cycle(sweep):
    energies = [row["energy"] for row in sweep]
    assert energies == sorted(energies, reverse=True)


def test_delivery_survives_low_duty(sweep):
    assert sweep[-1]["delivery"] > 0.5
