"""Ablation: duty-cycled MAC — energy vs delivery trade-off.

Section 6.1 argues that without sleeping, listen energy dominates, and
that duty cycles of 10-15% change the balance entirely.  The paper
could not measure this ("we are currently experimenting with
power-aware MAC approaches"); this bench runs the measurement its
analysis predicts: the same surveillance workload over always-on CSMA
vs duty-cycled CSMA, reporting delivery and total radio energy.
"""

import random

import pytest

from repro import AttributeVector, Key
from repro.energy import EnergyLedger
from repro.link import FragmentationLayer
from repro.mac import CsmaMac, DutyCycledCsmaMac
from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.radio import Channel, DistancePropagation, Modem, Topology
from repro.sim import SeedSequence, Simulator, TraceBus

DURATION = 600.0


def run_workload(duty_cycle: float, seed: int = 5):
    """A 4-hop line pushing one event every 6 s, like the Fig 8 source."""
    topology = Topology.line(5, spacing=15.0)
    sim = Simulator()
    seeds = SeedSequence(seed)
    trace = TraceBus()
    channel = Channel(sim, DistancePropagation(topology, seed=seed),
                      seeds=seeds, trace=trace)
    apis, ledgers = {}, {}
    for node_id in topology.node_ids():
        ledger = EnergyLedger()
        ledgers[node_id] = ledger
        modem = Modem(sim, channel, node_id, energy=ledger)
        if duty_cycle >= 1.0:
            mac = CsmaMac(sim, modem, rng=seeds.stream(f"mac:{node_id}"))
        else:
            mac = DutyCycledCsmaMac(
                sim, modem, duty_cycle=duty_cycle, period=1.0,
                rng=seeds.stream(f"mac:{node_id}"),
            )
            ledger.duty_cycle = duty_cycle
        frag = FragmentationLayer(sim, mac, node_id)
        node = DiffusionNode(sim, node_id, frag,
                             config=DiffusionConfig(), trace=trace,
                             rng=seeds.stream(f"diff:{node_id}"))
        apis[node_id] = DiffusionRouting(node)

    received = []
    sub = AttributeVector.builder().eq(Key.TYPE, "det").build()
    apis[0].subscribe(sub, lambda a, m: received.append(a))
    pub = apis[4].publish(
        AttributeVector.builder().actual(Key.TYPE, "det").build()
    )
    sent = 0
    t = 5.0
    while t < DURATION:
        sim.schedule(
            t, apis[4].send, pub,
            AttributeVector.builder().actual(Key.SEQUENCE, sent).build(),
        )
        sent += 1
        t += 6.0
    sim.run(until=DURATION)
    energy = sum(l.energy(elapsed=DURATION) for l in ledgers.values())
    return {
        "duty_cycle": duty_cycle,
        "delivery": len(received) / sent,
        "energy": energy,
    }


@pytest.fixture(scope="module")
def sweep():
    return [run_workload(d) for d in (1.0, 0.5, 0.2, 0.1)]


def test_duty_cycle_sweep(benchmark, sweep):
    benchmark.pedantic(run_workload, args=(1.0, 99), rounds=1, iterations=1)
    print()
    print(f"{'duty':>6} {'delivery':>9} {'total energy':>13}")
    for row in sweep:
        print(
            f"{row['duty_cycle']:>6.1f} {row['delivery']:>9.2f} "
            f"{row['energy']:>13.0f}"
        )
    energies = [row["energy"] for row in sweep]
    assert all(a > b for a, b in zip(energies, energies[1:]))
    # Low duty cycles save most of the energy while the deferred-window
    # MAC keeps delivering (the windows are synchronized).
    assert sweep[-1]["energy"] < sweep[0]["energy"] * 0.25
    assert sweep[-1]["delivery"] > 0.5


def test_energy_monotone_in_duty_cycle(sweep):
    energies = [row["energy"] for row in sweep]
    assert energies == sorted(energies, reverse=True)


def test_delivery_survives_low_duty(sweep):
    assert sweep[-1]["delivery"] > 0.5
