"""Ablation: the exploratory:data ratio (Section 6.1's explanation).

The paper explains the gap between the testbed's 42% savings and the
simulation's 3-5x savings by the exploratory:data ratio (1:10 on the
testbed vs 1:100 in simulation): flooded overhead dilutes the benefit
of aggregating on-path data.  This bench sweeps the ratio in the
analytical model and on the simulated testbed.
"""

import pytest

from repro.analysis import TrafficModel
from repro.apps import SurveillanceExperiment
from repro.core import DiffusionConfig
from repro.testbed import FIG8_SINK, FIG8_SOURCES, isi_testbed_network

RATIOS = (5, 10, 50, 100)


def test_model_overhead_share_falls_with_ratio(benchmark):
    def sweep():
        shares = {}
        for ratio in RATIOS:
            model = TrafficModel(exploratory_ratio=ratio)
            b = model.breakdown(4, aggregated=True)
            shares[ratio] = (b.interest + b.exploratory) / b.total
        return shares

    shares = benchmark(sweep)
    print()
    print("flooded-overhead share of aggregated traffic by ratio:")
    for ratio, share in shares.items():
        print(f"   1:{ratio:<4} -> {share:.0%}")
    values = [shares[r] for r in RATIOS]
    assert all(a > b for a, b in zip(values, values[1:]))


def test_simulated_ratio_sweep():
    """On the live testbed, a longer exploratory interval (more data per
    flood) reduces bytes/event with aggregation on."""

    def run(interval):
        config = DiffusionConfig(exploratory_interval=interval)
        net = isi_testbed_network(seed=17, config=config)
        exp = SurveillanceExperiment(net, FIG8_SINK, FIG8_SOURCES[:2],
                                     suppression=True)
        return exp.run(duration=900.0)

    short = run(30.0)   # 1:5 at 6 s data
    long = run(120.0)   # 1:20
    print()
    print(f"exploratory every  30s: {short.bytes_per_event:7.0f} B/event")
    print(f"exploratory every 120s: {long.bytes_per_event:7.0f} B/event")
    assert long.bytes_per_event < short.bytes_per_event


def test_model_savings_shape_against_paper_numbers():
    model = TrafficModel()
    assert model.bytes_per_event(1, True) == pytest.approx(990, rel=0.01)
    assert model.savings(4) > 0.5
