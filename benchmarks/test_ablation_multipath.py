"""Ablation: multipath reinforcement under intermittent links.

Paper Section 6.4: "some links provided only intermittent connectivity
... A future direction for diffusion might send similar data over
multiple paths to gain robustness when faced with low-quality links."
This bench runs that future work on the ISI testbed with a
Gilbert-Elliott intermittence overlay: delivery and traffic for
multipath degrees 1 and 2.
"""

import pytest

from repro.apps import SurveillanceExperiment
from repro.core import DiffusionConfig
from repro.radio import DistancePropagation, GilbertElliotLink
from repro.testbed import FIG8_SINK, FIG8_SOURCES, SensorNetwork
from repro.testbed.isi import (
    ISI_FULL_RANGE,
    ISI_MAX_RANGE,
    isi_testbed_topology,
)

pytestmark = pytest.mark.slow

DURATION = 900.0


def run_trial(multipath_degree: int, seed: int):
    topology = isi_testbed_topology()
    base = DistancePropagation(
        topology,
        full_range=ISI_FULL_RANGE,
        max_range=ISI_MAX_RANGE,
        asymmetry=0.10,
        seed=seed,
    )
    flaky = GilbertElliotLink(
        base, mean_good=60.0, mean_bad=12.0, bad_scale=0.2, seed=seed
    )
    network = SensorNetwork(
        topology,
        config=DiffusionConfig(multipath_degree=multipath_degree),
        seed=seed,
        propagation=flaky,
    )
    experiment = SurveillanceExperiment(
        network, FIG8_SINK, FIG8_SOURCES[:2], suppression=False
    )
    return experiment.run(duration=DURATION)


@pytest.fixture(scope="module")
def sweep():
    seeds = (41, 42, 43)
    return {
        degree: [run_trial(degree, seed) for seed in seeds]
        for degree in (1, 2)
    }


def mean(values):
    return sum(values) / len(values)


def test_multipath_sweep(benchmark, sweep):
    benchmark.pedantic(run_trial, args=(2, 99), rounds=1, iterations=1)
    print()
    print(f"{'degree':>7} {'delivery':>9} {'bytes/event':>12}")
    for degree, results in sweep.items():
        print(
            f"{degree:>7} {mean([r.delivery_ratio for r in results]):>9.2f} "
            f"{mean([r.bytes_per_event for r in results]):>12.0f}"
        )
    single = mean([r.delivery_ratio for r in sweep[1]])
    multi = mean([r.delivery_ratio for r in sweep[2]])
    assert multi >= single  # robustness gained (or at worst matched)


def test_multipath_delivery_at_least_single(sweep):
    single = mean([r.delivery_ratio for r in sweep[1]])
    multi = mean([r.delivery_ratio for r in sweep[2]])
    assert multi >= single


def test_multipath_delivery_meaningful(sweep):
    assert mean([r.delivery_ratio for r in sweep[2]]) > 0.3
