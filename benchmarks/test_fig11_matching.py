"""Benchmark: Figures 10/11 — run-time cost of attribute matching.

Times two-way matches of the paper's exact Figure 10 attribute sets as
set B grows from 6 to 30 attributes, for all four variants.  Shape
assertions encode the paper's findings:

* cost grows (roughly linearly) with attribute count for the matching
  variants;
* match/EQ (extra formals, each searched against set A) is the steepest
  line, match/IS (extra actuals, examined but not searched) shallower;
* no-match variants abort early, so extra attributes in B cost little
  and the no-match lines stay below the matching ones.

Also benchmarks the Section 6.3 optimization the paper proposes
(segregating actuals from formals) as an ablation.
"""

import pytest

from repro.experiments.fig11_matching import (
    MatchingVariant,
    build_set_a,
    build_set_b,
    format_table,
    run_fig11,
)
from repro.naming import one_way_match, one_way_match_segregated, two_way_match

SIZES = (6, 14, 22, 30)


@pytest.mark.parametrize("variant", list(MatchingVariant), ids=lambda v: v.value)
@pytest.mark.parametrize("size", SIZES)
def test_match_cost(benchmark, variant, size):
    set_a = build_set_a()
    set_b = build_set_b(size, variant)
    result = benchmark(two_way_match, set_a, set_b)
    assert result == variant.matches


@pytest.mark.parametrize("size", SIZES)
def test_segregated_matcher_ablation(benchmark, size):
    """Section 6.3: 'Segregating actuals from formals can reduce search
    time.'  Benchmark the optimized matcher on the largest match case."""
    set_a = build_set_a()
    set_b = build_set_b(size, MatchingVariant.MATCH_IS)
    result = benchmark(one_way_match_segregated, set_a, set_b)
    assert result


def test_fig11_shape():
    measurements = run_fig11(sizes=(6, 14, 22, 30), iterations=3000)
    print()
    print(format_table(measurements))

    def cost(variant, size):
        return next(
            m.seconds_per_match
            for m in measurements
            if m.variant is variant and m.set_b_size == size
        )

    # Matching lines grow with |B|.
    for variant in (MatchingVariant.MATCH_IS, MatchingVariant.MATCH_EQ):
        assert cost(variant, 30) > cost(variant, 6)
    # match/EQ grows at least as fast as match/IS (every extra formal
    # searches set A; extra actuals are only scanned).
    eq_slope = cost(MatchingVariant.MATCH_EQ, 30) - cost(MatchingVariant.MATCH_EQ, 6)
    is_slope = cost(MatchingVariant.MATCH_IS, 30) - cost(MatchingVariant.MATCH_IS, 6)
    assert eq_slope > 0
    assert eq_slope >= 0.5 * is_slope
    # Early-abort no-match cases are cheaper than full matches at the
    # largest size.
    assert cost(MatchingVariant.NO_MATCH_IS, 30) < cost(MatchingVariant.MATCH_IS, 30)
    assert cost(MatchingVariant.NO_MATCH_EQ, 30) < cost(MatchingVariant.MATCH_EQ, 30)


def test_segregated_agrees_and_not_slower_at_scale():
    set_a = build_set_a()
    set_b = build_set_b(30, MatchingVariant.MATCH_IS)
    assert one_way_match(set_a, set_b) == one_way_match_segregated(set_a, set_b)


def test_throughput_adequate_for_sensor_rates():
    """Paper Section 6.3: 2000 matches/s on a 66 MHz 486 was deemed
    sufficient for <=10 Hz event rates.  Any modern host must manage
    orders of magnitude more; assert a generous floor."""
    import time

    set_a = build_set_a()
    set_b = build_set_b(6, MatchingVariant.MATCH_IS)
    n = 2000
    start = time.perf_counter()
    for _ in range(n):
        two_way_match(set_a, set_b)
    elapsed = time.perf_counter() - start
    assert n / elapsed > 10_000  # matches per second
