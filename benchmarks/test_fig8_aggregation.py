"""Benchmark: Figure 8 — bytes per distinct event vs number of sources.

Regenerates both curves (with/without suppression, 1-4 sources) at the
paper's configuration: 30-minute runs, five trials per point, 95% CIs.
Shape assertions encode the paper's claims:

* with suppression, traffic per event is roughly flat in the number of
  sources;
* without suppression it grows with the number of sources;
* suppression saves a substantial fraction (paper: up to 42%) at four
  sources.
"""

import pytest

from repro.experiments.fig8_aggregation import (
    format_table,
    run_fig8,
    savings_at,
)

pytestmark = pytest.mark.slow

TRIALS = 5
DURATION = 1800.0


@pytest.fixture(scope="module")
def fig8_points():
    return run_fig8(trials=TRIALS, duration=DURATION)


def test_fig8_full_sweep(benchmark, fig8_points):
    """Record the sweep cost and print the paper-style table."""

    def one_point():
        # One representative point re-run for timing purposes.
        from repro.experiments.fig8_aggregation import run_fig8_trial

        return run_fig8_trial(4, True, seed=999, duration=DURATION)

    benchmark.pedantic(one_point, rounds=1, iterations=1)
    print()
    print(format_table(fig8_points))
    print(f"savings at 4 sources: {savings_at(fig8_points, 4):.0%} (paper: 42%)")

    # Shape claims (also checked individually by the non-benchmark
    # tests below, which --benchmark-only skips).
    supp_means = [p.bytes_per_event.mean for p in fig8_points if p.suppression]
    assert max(supp_means) / min(supp_means) < 1.8, "suppression curve not flat"
    nosupp = {p.sources: p.bytes_per_event.mean
              for p in fig8_points if not p.suppression}
    assert nosupp[4] > nosupp[1] * 1.2, "unsuppressed curve did not grow"
    assert 0.25 <= savings_at(fig8_points, 4) <= 0.70


def test_suppression_curve_roughly_flat(fig8_points):
    means = [
        p.bytes_per_event.mean for p in fig8_points if p.suppression
    ]
    assert max(means) / min(means) < 1.8


def test_unsuppressed_curve_grows(fig8_points):
    by_sources = {
        p.sources: p.bytes_per_event.mean
        for p in fig8_points
        if not p.suppression
    }
    assert by_sources[4] > by_sources[1] * 1.2


def test_savings_at_four_sources(fig8_points):
    # Paper: 42%.  The band allows for MAC/radio model differences while
    # requiring the effect to be substantial and in the right direction.
    savings = savings_at(fig8_points, 4)
    assert 0.25 <= savings <= 0.70


def test_one_source_curves_agree(fig8_points):
    """With one source there is nothing to suppress: both curves start
    from (nearly) the same point, as in the paper."""
    with_supp = next(
        p for p in fig8_points if p.suppression and p.sources == 1
    )
    without = next(
        p for p in fig8_points if not p.suppression and p.sources == 1
    )
    ratio = with_supp.bytes_per_event.mean / without.bytes_per_event.mean
    assert 0.8 <= ratio <= 1.2


def test_delivery_rates_in_paper_band(fig8_points):
    """Paper: 'Only 55-80% of events generated in the experiment were
    delivered to the sink.'  Allow a wider band, but delivery must be
    partial (congested, best-effort) rather than perfect or collapsed."""
    for p in fig8_points:
        assert 0.25 <= p.delivery_ratio.mean <= 0.99
