"""Indexed-channel equivalence suite.

The neighborhood fast path must be *verdict-identical* to the reference
O(N) channel scan: same fragments delivered, collided, and lost, in the
same order, on seeded scenarios — including mobility (epoch
invalidation), Gilbert–Elliot links (per-link window expiry), capture
effect on and off, duty-cycled sleeping radios, and mid-run node
failures.  Each case here builds the same scenario twice — once with
``channel_indexed=False`` (reference) and once with ``True`` — runs an
identical workload, and compares full channel trace event sequences
plus every outcome counter.
"""

import itertools
import random

import pytest

import repro.core.messages as core_messages
from repro import AttributeVector, Key
from repro.core import DiffusionConfig
from repro.mac import DutyCycledCsmaMac
from repro.radio import (
    DistancePropagation,
    GilbertElliotLink,
    Topology,
)
from repro.radio.dynamics import (
    FailureEvent,
    FailureSchedule,
    RandomWaypointMobility,
)
from repro.testbed import SensorNetwork

#: channel-layer categories whose full event sequence must match.
CHANNEL_CATEGORIES = (
    "channel.tx",
    "channel.rx",
    "channel.collision",
    "channel.loss",
    "path.drop",
)

CONFIG = DiffusionConfig(
    interest_interval=8.0,
    interest_jitter=0.3,
    exploratory_interval=8.0,
    gradient_timeout=25.0,
    reinforced_timeout=20.0,
)


def random_topology(n_nodes: int, seed: int, side: float = 70.0) -> Topology:
    rng = random.Random(seed * 1009 + 7)
    topo = Topology()
    for node_id in range(n_nodes):
        topo.add_node(node_id, rng.uniform(0, side), rng.uniform(0, side))
    return topo


def run_scenario(
    indexed: bool,
    seed: int,
    n_nodes: int = 10,
    duration: float = 30.0,
    gilbert: bool = False,
    bad_scale: float = 0.2,
    capture: bool = True,
    mobile: bool = False,
    duty_cycle: bool = False,
    failures: bool = False,
    vectorized: bool = False,
    loss_mode: str = "stream",
):
    """Build + run one seeded scenario; return (trace events, outcome)."""
    # msg_id draws from a process-global counter; restart it so the two
    # runs under comparison allocate identical trace ids (this also
    # makes any divergence in message-creation *order* visible).
    core_messages._msg_counter = itertools.count(1)
    topo = random_topology(n_nodes, seed)
    propagation = DistancePropagation(topo, seed=seed)
    if gilbert:
        propagation = GilbertElliotLink(
            propagation, mean_good=4.0, mean_bad=1.5,
            bad_scale=bad_scale, seed=seed,
        )
    mac_factory = None
    if duty_cycle:
        def mac_factory(sim, modem, rng, queue_limit):
            return DutyCycledCsmaMac(
                sim, modem, duty_cycle=0.5, period=1.0, rng=rng,
                queue_limit=queue_limit,
            )
    net = SensorNetwork(
        topo, config=CONFIG, seed=seed, propagation=propagation,
        mac_factory=mac_factory, channel_indexed=indexed,
        channel_vectorized=vectorized, loss_mode=loss_mode,
    )
    net.channel.capture_effect = capture
    assert net.channel.indexed is indexed

    events = []
    for category in CHANNEL_CATEGORIES:
        net.trace.subscribe(
            category,
            lambda r: events.append(
                (r.time, r.category, r.node, tuple(sorted(r.data.items())))
            ),
        )

    delivered_payloads = []
    sink, source = 0, n_nodes - 1
    sub = AttributeVector.builder().eq(Key.TYPE, "equiv").build()
    net.api(sink).subscribe(
        sub, lambda attrs, msg: delivered_payloads.append(net.sim.now)
    )
    pub = net.api(source).publish(
        AttributeVector.builder().actual(Key.TYPE, "equiv").build()
    )
    for i in range(int(duration) - 3):
        net.sim.schedule(
            2.0 + i, net.api(source).send, pub,
            AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
        )

    if mobile:
        for node_id in (1, 2):
            # Pin trajectories to the scenario seed: this suite compares
            # channel implementations, so it must not drift when the
            # mobility default RNG stream changes.
            RandomWaypointMobility(
                net.sim, topo, node_id, bounds=(0.0, 70.0, 0.0, 70.0),
                speed=4.0, step=0.5, rng=random.Random(seed * 1013 + node_id),
            )
    if failures:
        FailureSchedule(
            net,
            [
                FailureEvent(node_id=1, fail_at=duration / 3),
                FailureEvent(
                    node_id=2,
                    fail_at=duration / 4,
                    recover_at=duration / 2,
                ),
            ],
        )

    net.run(until=duration)
    channel = net.channel
    outcome = {
        "sent": channel.fragments_sent,
        "delivered": channel.fragments_delivered,
        "collided": channel.fragments_collided,
        "lost": channel.fragments_lost,
        "mac_transmitted": sum(
            s.mac.stats.transmitted for s in net.stacks.values()
        ),
        "mac_backoffs": sum(s.mac.stats.backoffs for s in net.stacks.values()),
        "app_delivered": delivered_payloads,
    }
    return events, outcome, channel


def assert_equivalent(**kwargs):
    ref_events, ref_outcome, ref_channel = run_scenario(indexed=False, **kwargs)
    fast_events, fast_outcome, fast_channel = run_scenario(indexed=True, **kwargs)
    assert fast_outcome == ref_outcome
    assert fast_events == ref_events
    # The scenario has to produce real traffic for the comparison to
    # mean anything.
    assert ref_outcome["sent"] > 20
    return ref_channel, fast_channel


def assert_vectorized_equivalent(**kwargs):
    """All three engines — reference, indexed, vectorized — must agree
    event for event; the vectorized run must really engage the batch."""
    ref_events, ref_outcome, _ = run_scenario(indexed=False, **kwargs)
    idx_events, idx_outcome, _ = run_scenario(indexed=True, **kwargs)
    vec_events, vec_outcome, vec_channel = run_scenario(
        indexed=True, vectorized=True, **kwargs
    )
    assert idx_outcome == ref_outcome
    assert idx_events == ref_events
    assert vec_outcome == ref_outcome
    assert vec_events == ref_events
    assert ref_outcome["sent"] > 20
    return vec_channel


class TestStaticEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_static_topologies(self, seed):
        assert_equivalent(seed=seed)

    def test_capture_effect_off(self):
        assert_equivalent(seed=6, capture=False)

    def test_static_topology_builds_sets_once(self):
        _, fast_channel = assert_equivalent(seed=2)
        index = fast_channel.index
        # One audibility set + one carrier set per querying node at most:
        # nothing was invalidated, so no set was ever built twice.
        assert index.rebuilds == 0
        assert index.set_builds <= 2 * len(fast_channel.node_ids())
        assert index.memo_hits > index.memo_misses


class TestDynamicEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_gilbert_elliot_links(self, seed):
        assert_equivalent(seed=seed, gilbert=True)

    def test_gilbert_elliot_dead_bad_state(self):
        # bad_scale=0 makes audibility supersets strict: a link can be
        # in the set while its instantaneous PRR is exactly zero.
        assert_equivalent(seed=4, gilbert=True, bad_scale=0.0)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_mobility_epoch_invalidation(self, seed):
        ref, fast = assert_equivalent(seed=seed, mobile=True)
        # Moves must actually have invalidated the caches.
        assert fast.index.rebuilds > 0

    def test_duty_cycled_sleeping_radios(self):
        assert_equivalent(seed=3, duty_cycle=True)

    def test_failures_and_recovery(self):
        assert_equivalent(seed=5, failures=True)

    def test_everything_at_once(self):
        assert_equivalent(
            seed=8, gilbert=True, mobile=True, duty_cycle=True, failures=True
        )


needs_numpy = pytest.mark.skipif(
    not __import__("repro.radio.vectorized", fromlist=["available"]).available(),
    reason="numpy unavailable or REPRO_NO_NUMPY set",
)


@needs_numpy
class TestVectorizedEquivalence:
    """The numpy batch engine against both scalar engines.

    Same contract as the indexed suite, one level up: batch audibility
    cuts, delivery rows, exact carrier hearer sets, and batched hashed
    loss draws must leave every channel trace event and counter
    bit-identical.
    """

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_static_topologies(self, seed):
        chan = assert_vectorized_equivalent(seed=seed)
        assert chan.index.has_batch

    @pytest.mark.parametrize("seed", [1, 2])
    def test_gilbert_elliot_links(self, seed):
        assert_vectorized_equivalent(seed=seed, gilbert=True)

    def test_gilbert_elliot_dead_bad_state(self):
        assert_vectorized_equivalent(seed=4, gilbert=True, bad_scale=0.0)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_mobility_epoch_invalidation(self, seed):
        chan = assert_vectorized_equivalent(seed=seed, mobile=True)
        assert chan.index.rebuilds > 0

    @pytest.mark.parametrize("loss_mode", ["stream", "hashed"])
    def test_loss_modes(self, loss_mode):
        assert_vectorized_equivalent(seed=5, loss_mode=loss_mode)

    def test_hashed_draws_with_gilbert(self):
        assert_vectorized_equivalent(seed=6, gilbert=True, loss_mode="hashed")

    def test_everything_at_once(self):
        assert_vectorized_equivalent(
            seed=8, gilbert=True, mobile=True, duty_cycle=True, failures=True,
            loss_mode="hashed",
        )

    def test_numpy_disabled_falls_back_bit_identically(self, monkeypatch):
        # With REPRO_NO_NUMPY the vectorize() wrapper must be inert:
        # same verdicts via the scalar fast path, fallbacks counted.
        vec_events, vec_outcome, _ = run_scenario(
            indexed=True, vectorized=True, seed=3
        )
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        off_events, off_outcome, off_channel = run_scenario(
            indexed=True, vectorized=True, seed=3
        )
        assert not off_channel.index.has_batch
        assert off_outcome == vec_outcome
        assert off_events == vec_events
