"""Tests for the duty-cycled CSMA MAC."""

import random

import pytest

from repro.energy import EnergyLedger
from repro.mac import DutyCycledCsmaMac
from repro.radio import Channel, Modem, TablePropagation
from repro.sim import SeedSequence, Simulator


def make_net(duty_cycle, n_nodes=2, links=None, period=1.0):
    sim = Simulator()
    channel = Channel(
        sim, TablePropagation(links or {(0, 1): 1.0}), seeds=SeedSequence(1)
    )
    modems, macs = [], []
    for i in range(n_nodes):
        ledger = EnergyLedger()
        modem = Modem(sim, channel, node_id=i, energy=ledger)
        mac = DutyCycledCsmaMac(
            sim, modem, duty_cycle=duty_cycle, period=period,
            rng=random.Random(40 + i),
        )
        modems.append(modem)
        macs.append(mac)
    return sim, channel, modems, macs


class Sink:
    def __init__(self, modem):
        self.received = []
        modem.receive_callback = lambda p, s, n, d: self.received.append(p)


class TestSchedule:
    def test_awake_windows(self):
        sim, channel, modems, macs = make_net(0.2, period=1.0)
        mac = macs[0]
        assert mac.is_awake(0.0)
        assert mac.is_awake(0.19)
        assert not mac.is_awake(0.21)
        assert mac.is_awake(1.05)

    def test_next_wakeup(self):
        sim, channel, modems, macs = make_net(0.2, period=1.0)
        mac = macs[0]
        assert mac.next_wakeup(0.1) == pytest.approx(0.1)  # already awake
        assert mac.next_wakeup(0.5) == pytest.approx(1.0)

    def test_window_time_left(self):
        sim, channel, modems, macs = make_net(0.2, period=1.0)
        mac = macs[0]
        assert mac.window_time_left(0.05) == pytest.approx(0.15)
        assert mac.window_time_left(0.5) == 0.0

    def test_invalid_parameters(self):
        sim = Simulator()
        channel = Channel(sim, TablePropagation({}))
        modem = Modem(sim, channel, node_id=0)
        with pytest.raises(ValueError):
            DutyCycledCsmaMac(sim, modem, duty_cycle=0.0)
        with pytest.raises(ValueError):
            DutyCycledCsmaMac(sim, modem, duty_cycle=0.5, period=0.0)

    def test_full_duty_cycle_never_sleeps(self):
        sim, channel, modems, macs = make_net(1.0)
        sink = Sink(modems[1])
        macs[0].enqueue("x", 20)
        sim.run(until=5.0)
        assert sink.received == ["x"]
        assert not modems[0].sleeping

    def test_energy_ledger_inherits_duty_cycle(self):
        sim, channel, modems, macs = make_net(0.25)
        assert modems[0].energy.duty_cycle == 0.25


class TestDeferral:
    def test_fragments_delivered_inside_windows(self):
        sim, channel, modems, macs = make_net(0.2, period=1.0)
        sink = Sink(modems[1])
        # Enqueue mid-sleep: must be deferred, not lost.
        sim.schedule(0.5, macs[0].enqueue, "deferred", 20)
        sim.run(until=5.0)
        assert sink.received == ["deferred"]
        assert macs[0].deferred_to_window >= 1

    def test_bulk_traffic_survives_low_duty_cycle(self):
        sim, channel, modems, macs = make_net(0.2, period=1.0)
        sink = Sink(modems[1])
        for i in range(20):
            sim.schedule(i * 0.3, macs[0].enqueue, f"m{i}", 27)
        sim.run(until=60.0)
        assert len(sink.received) == 20

    def test_sleeping_receiver_misses_unsynchronized_sender(self):
        """A full-duty sender talking to a 10% receiver with a different
        schedule loses most fragments — why schedules must be shared."""
        sim = Simulator()
        channel = Channel(sim, TablePropagation({(0, 1): 1.0}),
                          seeds=SeedSequence(1))
        ledger0, ledger1 = EnergyLedger(), EnergyLedger()
        sender_modem = Modem(sim, channel, node_id=0, energy=ledger0)
        sender = DutyCycledCsmaMac(sim, sender_modem, duty_cycle=1.0,
                                   rng=random.Random(1))
        receiver_modem = Modem(sim, channel, node_id=1, energy=ledger1)
        receiver = DutyCycledCsmaMac(sim, receiver_modem, duty_cycle=0.1,
                                     period=1.0, rng=random.Random(2))
        sink = Sink(receiver_modem)
        for i in range(50):
            sim.schedule(i * 0.35, sender.enqueue, f"m{i}", 20)
        sim.run(until=30.0)
        assert len(sink.received) < 25  # most fragments hit a sleeping radio

    def test_transmission_never_starts_while_asleep(self):
        sim, channel, modems, macs = make_net(0.2, period=1.0)
        times = []
        original = modems[0].transmit_fragment

        def spy(payload, nbytes, link_dst=None, on_done=None):
            times.append(sim.now)
            return original(payload, nbytes, link_dst, on_done)

        modems[0].transmit_fragment = spy
        for i in range(10):
            sim.schedule(i * 0.7, macs[0].enqueue, f"m{i}", 27)
        sim.run(until=30.0)
        for t in times:
            assert macs[0].is_awake(t)


class TestEnergySavings:
    def test_duty_cycle_cuts_total_energy(self):
        def total_energy(duty):
            sim, channel, modems, macs = make_net(duty, period=1.0)
            Sink(modems[1])
            for i in range(10):
                sim.schedule(i * 1.0, macs[0].enqueue, f"m{i}", 20)
            sim.run(until=30.0)
            return sum(m.energy.energy(elapsed=30.0) for m in modems)

        assert total_energy(0.1) < total_energy(1.0) * 0.3
