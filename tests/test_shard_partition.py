"""Spatial partitioners for the sharded kernel.

A partition must be a true partition (every node in exactly one
shard), deterministic (the same topology and arguments always produce
the same cut — shard equivalence depends on it), and balanced enough
that the critical path is not one overloaded shard.
"""

import pytest

from repro.radio import Topology
from repro.shard import grid_partition, kmeans_partition, partition_nodes


def grid_topology(columns, rows, spacing=10.0):
    topo = Topology()
    for r in range(rows):
        for c in range(columns):
            topo.add_node(r * columns + c, c * spacing, r * spacing)
    return topo


def assert_is_partition(parts, topology):
    flat = [n for part in parts for n in part]
    assert sorted(flat) == topology.node_ids()
    assert len(flat) == len(set(flat))
    assert all(part for part in parts)


@pytest.mark.parametrize("method", ["grid", "kmeans"])
@pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
def test_every_node_lands_in_exactly_one_shard(method, shards):
    topo = grid_topology(8, 6)
    parts = partition_nodes(topo, shards, method=method)
    assert len(parts) == shards
    assert_is_partition(parts, topo)


@pytest.mark.parametrize("method", ["grid", "kmeans"])
def test_partition_is_deterministic(method):
    a = partition_nodes(grid_topology(9, 5), 4, method=method)
    b = partition_nodes(grid_topology(9, 5), 4, method=method)
    assert a == b


@pytest.mark.parametrize("method", ["grid", "kmeans"])
@pytest.mark.parametrize("shards", [2, 4, 8])
def test_partition_is_balanced(method, shards):
    topo = grid_topology(16, 8)   # 128 nodes
    parts = partition_nodes(topo, shards, method=method)
    sizes = [len(p) for p in parts]
    ideal = len(topo) / shards
    assert max(sizes) <= ideal * 1.5
    assert min(sizes) >= ideal * 0.5


def test_grid_partition_cuts_are_spatially_contiguous_slabs():
    """A 2-shard grid cut of a wide grid splits along x: each shard
    holds whole columns, so the boundary is one column seam."""
    topo = grid_topology(10, 4)
    left, right = grid_partition(topo, 2)
    max_left_x = max(topo.position(n).x for n in left)
    min_right_x = min(topo.position(n).x for n in right)
    assert max_left_x < min_right_x


def test_grid_partition_single_shard_owns_everything():
    topo = grid_topology(4, 4)
    parts = grid_partition(topo, 1)
    assert parts == [topo.node_ids()]


def test_kmeans_clusters_are_spatially_coherent():
    """Each k-means shard's nodes sit nearer their own centroid than
    any other shard's — the property that keeps the boundary small."""
    topo = grid_topology(12, 12, spacing=5.0)
    parts = kmeans_partition(topo, 4)
    centroids = [
        (
            sum(topo.position(n).x for n in part) / len(part),
            sum(topo.position(n).y for n in part) / len(part),
        )
        for part in parts
    ]

    def dist2(n, c):
        pos = topo.position(n)
        return (pos.x - c[0]) ** 2 + (pos.y - c[1]) ** 2

    # Capacity capping can strand a few nodes with a foreign centroid;
    # the overwhelming majority must be home.
    misplaced = sum(
        1
        for i, part in enumerate(parts)
        for n in part
        if min(range(len(parts)), key=lambda j: dist2(n, centroids[j])) != i
    )
    assert misplaced <= len(topo) * 0.1


def test_more_shards_than_nodes_is_rejected():
    topo = grid_topology(2, 2)
    with pytest.raises(ValueError):
        partition_nodes(topo, 5, method="grid")
    with pytest.raises(ValueError):
        partition_nodes(topo, 5, method="kmeans")


def test_zero_shards_is_rejected():
    with pytest.raises(ValueError):
        partition_nodes(grid_topology(2, 2), 0, method="grid")


def test_unknown_method_is_rejected():
    with pytest.raises(ValueError, match="unknown partition method"):
        partition_nodes(grid_topology(2, 2), 2, method="voronoi")
