"""Tests for the FaultPlan DSL: validation and JSON round-trips."""

import pytest

from repro.faults import (
    ClockSkew,
    EnergyBrownout,
    FaultPlan,
    FragmentCorruption,
    LinkFlap,
    NodeCrash,
    Partition,
    PlanError,
)

NODES = range(12)


def full_plan() -> FaultPlan:
    return FaultPlan(
        (
            NodeCrash(node=5, at=10.0, recover_at=30.0),
            LinkFlap(a=0, b=5, at=20.0, down=5.0, flaps=2, period=12.0),
            Partition(groups=((0, 1, 4), (2, 3, 6)), at=40.0, heal_at=60.0),
            ClockSkew(node=7, at=15.0, offset=2.0),
            FragmentCorruption(node=5, at=50.0, duration=10.0, rate=0.5),
            EnergyBrownout(node=9, at=70.0, duration=20.0, duty_cycle=0.2),
        )
    )


class TestValidation:
    def test_full_plan_validates(self):
        plan = full_plan()
        assert plan.validate(NODES) is plan
        assert len(plan) == 6

    def test_unknown_node_names_action_index(self):
        plan = FaultPlan((NodeCrash(node=99, at=1.0),))
        with pytest.raises(PlanError, match=r"action 0 \(node-crash\).*99"):
            plan.validate(NODES)

    def test_recovery_must_follow_crash(self):
        plan = FaultPlan((NodeCrash(node=1, at=10.0, recover_at=5.0),))
        with pytest.raises(PlanError, match="must follow"):
            plan.validate(NODES)

    def test_link_needs_distinct_endpoints(self):
        plan = FaultPlan((LinkFlap(a=3, b=3, at=1.0),))
        with pytest.raises(PlanError, match="distinct"):
            plan.validate(NODES)

    def test_flap_period_must_exceed_down_window(self):
        plan = FaultPlan((LinkFlap(a=0, b=1, at=1.0, down=10.0, flaps=3,
                                   period=5.0),))
        with pytest.raises(PlanError, match="period"):
            plan.validate(NODES)

    def test_partition_rejects_overlapping_groups(self):
        plan = FaultPlan(
            (Partition(groups=((0, 1), (1, 2)), at=1.0, heal_at=5.0),)
        )
        with pytest.raises(PlanError, match="two groups"):
            plan.validate(NODES)

    def test_partition_needs_two_groups(self):
        plan = FaultPlan((Partition(groups=((0, 1),), at=1.0, heal_at=5.0),))
        with pytest.raises(PlanError, match="at least two"):
            plan.validate(NODES)

    def test_clock_skew_must_change_something(self):
        plan = FaultPlan((ClockSkew(node=1, at=1.0),))
        with pytest.raises(PlanError, match="offset or drift"):
            plan.validate(NODES)

    def test_corruption_rate_bounds(self):
        plan = FaultPlan(
            (FragmentCorruption(node=1, at=1.0, duration=5.0, rate=1.5),)
        )
        with pytest.raises(PlanError, match="rate"):
            plan.validate(NODES)

    def test_brownout_duty_cycle_bounds(self):
        plan = FaultPlan(
            (EnergyBrownout(node=1, at=1.0, duration=5.0, duty_cycle=1.0),)
        )
        with pytest.raises(PlanError, match="duty_cycle"):
            plan.validate(NODES)


class TestDerived:
    def test_horizon_covers_latest_window(self):
        plan = full_plan()
        # The brownout runs 70..90 — the latest touch.
        assert plan.horizon() == pytest.approx(90.0)

    def test_needs_overlay_only_for_link_actions(self):
        assert full_plan().needs_overlay()
        crash_only = FaultPlan((NodeCrash(node=1, at=1.0),))
        assert not crash_only.needs_overlay()

    def test_flap_effective_period_defaults_to_twice_down(self):
        flap = LinkFlap(a=0, b=1, at=0.0, down=7.0)
        assert flap.effective_period == pytest.approx(14.0)

    def test_flap_window_spans_all_cycles(self):
        flap = LinkFlap(a=0, b=1, at=10.0, down=5.0, flaps=3, period=20.0)
        assert flap.window() == (10.0, 55.0)


class TestJson:
    def test_round_trip_is_identity(self):
        plan = full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_round_trip_preserves_validation(self):
        restored = FaultPlan.from_json(full_plan().to_json())
        restored.validate(NODES)

    def test_missing_actions_rejected(self):
        with pytest.raises(PlanError, match="actions"):
            FaultPlan.from_json({})

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="meteor-strike"):
            FaultPlan.from_json(
                {"actions": [{"kind": "meteor-strike", "at": 1.0}]}
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(PlanError, match="severity"):
            FaultPlan.from_json(
                {"actions": [{"kind": "node-crash", "node": 1, "at": 1.0,
                              "severity": 9}]}
            )

    def test_missing_required_field_rejected(self):
        with pytest.raises(PlanError, match="node-crash"):
            FaultPlan.from_json({"actions": [{"kind": "node-crash", "at": 1.0}]})
