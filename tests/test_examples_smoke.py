"""Smoke tests: every example runs to completion and prints sane output.

Examples are part of the public surface (deliverable b); these tests
keep them from rotting.  Each runs in-process via runpy with stdout
captured.
"""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

EXPECTATIONS = {
    "quickstart.py": ["after interest propagation", "events delivered at sink"],
    "animal_tracking.py": ["geographic scoping respected: True", "with GEAR"],
    "surveillance_aggregation.py": ["traffic saved by in-network aggregation"],
    "nested_queries.py": ["nested (2-level)", "flat (1-level)"],
    "tiered_motes.py": ["interests bridged down: 1", "footprint"],
    "energy_monitoring.py": ["network energy picture", "poorest node"],
    "bulk_transfer.py": ["checksum ok: True"],
    "target_tracking.py": ["mean tracking error", "merged in-network"],
    "query_console.py": ["rows; first 3:", "SELECT detection"],
    "adaptive_sampling.py": ["controller trajectory", "of offered load"],
}


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return buffer.getvalue()


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_example_runs(name):
    output = run_example(name)
    for marker in EXPECTATIONS[name]:
        assert marker in output, f"{name}: missing {marker!r} in output"


def test_all_examples_covered():
    """Every example script on disk has a smoke test."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTATIONS)
