"""Tests for soft-state lifetimes: gradient and reinforcement expiry,
and negative reinforcement chains at the protocol level."""

import pytest

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting, MessageType
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.sim import Simulator
from repro.testbed import IdealNetwork


def sub_attrs():
    return AttributeVector.builder().eq(Key.TYPE, "t").build()


def pub_attrs():
    return AttributeVector.builder().actual(Key.TYPE, "t").build()


def sample(seq):
    return AttributeVector.builder().actual(Key.SEQUENCE, seq).build()


def build_line(n, config):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01)
    nodes, apis = {}, {}
    for i in range(n):
        nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(nodes[i])
    for i in range(n - 1):
        net.connect(i, i + 1)
    return sim, net, nodes, apis


class TestGradientExpiry:
    def test_gradients_die_when_interests_stop(self):
        config = DiffusionConfig(
            interest_interval=10.0, gradient_timeout=25.0,
            interest_jitter=0.1, reinforcement_jitter=0.05,
        )
        sim, net, nodes, apis = build_line(3, config)
        handle = apis[0].subscribe(sub_attrs(), lambda a, m: None)
        sim.run(until=5.0)
        apis[0].unsubscribe(handle)
        sim.run(until=60.0)
        # Data from the far end is now dropped at the source: no demand.
        pub = apis[2].publish(pub_attrs())
        apis[2].send(pub, sample(0))
        sim.run(until=70.0)
        assert nodes[2].stats.messages_dropped_no_route >= 1
        assert nodes[0].stats.events_delivered == 0

    def test_sweep_reclaims_dead_entries(self):
        config = DiffusionConfig(
            interest_interval=10.0, gradient_timeout=25.0,
            interest_jitter=0.1, reinforcement_jitter=0.05,
        )
        sim, net, nodes, apis = build_line(3, config)
        handle = apis[0].subscribe(sub_attrs(), lambda a, m: None)
        sim.run(until=5.0)
        assert len(nodes[2].gradients) == 1
        apis[0].unsubscribe(handle)
        sim.run(until=120.0)  # several sweep periods past expiry
        assert len(nodes[2].gradients) == 0


class TestReinforcedExpiry:
    def test_reinforced_path_expires_without_refresh(self):
        # Exploratory only once (long interval); reinforced state has a
        # short timeout, so late plain data is dropped at the source.
        config = DiffusionConfig(
            interest_interval=10.0,
            gradient_timeout=1000.0,
            interest_jitter=0.1,
            exploratory_interval=10_000.0,  # effectively once
            reinforced_timeout=20.0,
            reinforcement_jitter=0.05,
        )
        sim, net, nodes, apis = build_line(3, config)
        received = []
        apis[0].subscribe(sub_attrs(), lambda a, m: received.append(a))
        pub = apis[2].publish(pub_attrs())
        sim.schedule(1.0, apis[2].send, pub, sample(0))   # exploratory
        sim.schedule(5.0, apis[2].send, pub, sample(1))   # plain, fresh path
        sim.schedule(60.0, apis[2].send, pub, sample(2))  # plain, stale path
        sim.run(until=80.0)
        seqs = {a.value_of(Key.SEQUENCE) for a in received}
        assert 0 in seqs and 1 in seqs
        assert 2 not in seqs

    def test_periodic_exploratory_keeps_path_fresh(self):
        config = DiffusionConfig(
            interest_interval=10.0,
            gradient_timeout=30.0,
            interest_jitter=0.1,
            exploratory_interval=15.0,
            reinforced_timeout=40.0,
            reinforcement_jitter=0.05,
        )
        sim, net, nodes, apis = build_line(3, config)
        received = []
        apis[0].subscribe(sub_attrs(), lambda a, m: received.append(a))
        pub = apis[2].publish(pub_attrs())
        for i in range(40):
            sim.schedule(1.0 + i * 3.0, apis[2].send, pub, sample(i))
        sim.run(until=130.0)
        assert len(received) == 40


class TestNegativeReinforcementChain:
    def test_switch_tears_down_old_path_state(self):
        """Diamond with controllable first-copy arrival: force the sink
        to switch preferred relays and verify the loser's reinforced
        state is removed by the negative reinforcement."""
        config = DiffusionConfig(
            interest_interval=10.0,
            gradient_timeout=60.0,
            interest_jitter=0.1,
            exploratory_interval=8.0,
            reinforced_timeout=100.0,
            reinforcement_jitter=0.05,
        )
        sim = Simulator()
        net = IdealNetwork(sim, delay=0.01)
        nodes, apis = {}, {}
        for i in range(4):
            nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
            apis[i] = DiffusionRouting(nodes[i])
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            net.connect(a, b)
        apis[0].subscribe(sub_attrs(), lambda a, m: None)
        pub = apis[3].publish(pub_attrs())
        for i in range(20):
            sim.schedule(1.0 + i * 2.0, apis[3].send, pub, sample(i))
        # Degrade path via relay 1 mid-run so exploratory copies start
        # winning through relay 2, forcing a switch.
        sim.schedule(15.0, net.disconnect, 1, 3)
        sim.run(until=60.0)
        neg_total = sum(
            nodes[i].stats.messages_by_type[MessageType.NEGATIVE_REINFORCEMENT]
            for i in range(4)
        )
        assert neg_total >= 1
        # The negative reinforcement removed relay 1's reinforced state
        # for origin 3 (its link to the source is cut, so nothing can
        # re-establish it).
        for entry in nodes[1].gradients.entries():
            assert entry.reinforced_neighbors(3, sim.now) == []
        # Data continues via relay 2.
        assert nodes[2].stats.messages_by_type[MessageType.DATA] >= 5


class TestCacheSizingMatters:
    def test_tiny_cache_still_prevents_immediate_loops(self):
        """Micro-scale caches (capacity 10) still stop flood loops on
        small networks — the sizing argument behind micro-diffusion."""
        config = DiffusionConfig(
            cache_capacity=10, reinforcement_jitter=0.05
        )
        sim = Simulator()
        net = IdealNetwork(sim, delay=0.01)
        nodes, apis = {}, {}
        n = 5
        for i in range(n):
            nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
            apis[i] = DiffusionRouting(nodes[i])
        for i in range(n):
            net.connect(i, (i + 1) % n)  # ring
        received = []
        apis[0].subscribe(sub_attrs(), lambda a, m: received.append(a))
        pub = apis[2].publish(pub_attrs())
        sim.schedule(1.0, apis[2].send, pub, sample(0))
        sim.run(until=20.0, max_events=20_000)
        assert sim.events_processed < 20_000
        assert len(received) == 1
