"""Tests for fragmentation/reassembly and neighbor tracking."""

import random

import pytest

from repro.link import EphemeralIdAllocator, FragmentationLayer, NeighborTable
from repro.mac import CsmaMac
from repro.radio import Channel, Modem, TablePropagation
from repro.sim import SeedSequence, Simulator


def make_frag_net(links, n_nodes=2):
    sim = Simulator()
    channel = Channel(sim, TablePropagation(links), seeds=SeedSequence(1))
    layers = []
    for i in range(n_nodes):
        modem = Modem(sim, channel, node_id=i)
        mac = CsmaMac(sim, modem, rng=random.Random(50 + i))
        layers.append(FragmentationLayer(sim, mac, node_id=i))
    return sim, channel, layers


class Collector:
    def __init__(self, layer):
        self.messages = []
        layer.deliver_callback = lambda msg, src, nbytes: self.messages.append(
            (msg, src, nbytes)
        )


class TestFragmentationMath:
    def test_fragments_for(self):
        sim, channel, layers = make_frag_net({(0, 1): 1.0})
        assert layers[0].fragments_for(27) == 1
        assert layers[0].fragments_for(28) == 2
        assert layers[0].fragments_for(112) == 5  # paper's event size
        assert layers[0].fragments_for(127) == 5

    def test_invalid_size_rejected(self):
        sim, channel, layers = make_frag_net({(0, 1): 1.0})
        with pytest.raises(ValueError):
            layers[0].fragments_for(0)


class TestReassembly:
    def test_small_message_single_fragment(self):
        sim, channel, layers = make_frag_net({(0, 1): 1.0})
        out = Collector(layers[1])
        layers[0].send_message("short", 20)
        sim.run()
        assert out.messages == [("short", 0, 20)]

    def test_multi_fragment_message_reassembled(self):
        sim, channel, layers = make_frag_net({(0, 1): 1.0})
        out = Collector(layers[1])
        layers[0].send_message("event", 112)
        sim.run()
        assert len(out.messages) == 1
        msg, src, nbytes = out.messages[0]
        assert msg == "event"
        assert nbytes == 112

    def test_lost_fragment_loses_whole_message(self):
        sim, channel, layers = make_frag_net({(0, 1): 1.0})
        out = Collector(layers[1])
        # Drop exactly one mid-message fragment at the receiving modem.
        dropped = []
        original = layers[1].on_fragment

        def lossy(fragment, src):
            if fragment.index == 2 and not dropped:
                dropped.append(fragment)
                return
            original(fragment, src)

        layers[1].on_fragment = lossy
        layers[1].mac.modem.receive_callback = (
            lambda payload, src, nbytes, link_dst: lossy(payload, src)
        )
        layers[0].send_message("event", 112)
        sim.run(until=100.0)
        assert out.messages == []
        assert layers[1].messages_incomplete == 1

    def test_duplicate_fragment_ignored(self):
        sim, channel, layers = make_frag_net({(0, 1): 1.0})
        out = Collector(layers[1])
        layers[0].send_message("event", 60)  # 3 fragments

        # Duplicate every fragment at the receiver.
        original_cb = layers[1].mac.modem.receive_callback

        def duplicate(payload, src, nbytes, link_dst):
            original_cb(payload, src, nbytes, link_dst)
            original_cb(payload, src, nbytes, link_dst)

        layers[1].mac.modem.receive_callback = duplicate
        sim.run()
        assert len(out.messages) == 1

    def test_interleaved_messages_from_two_senders(self):
        links = {(0, 2): 1.0, (1, 2): 1.0, (0, 1): 1.0, (1, 0): 1.0}
        sim, channel, layers = make_frag_net(links, n_nodes=3)
        out = Collector(layers[2])
        layers[0].send_message("from-0", 80)
        layers[1].send_message("from-1", 80)
        sim.run()
        assert sorted(m for m, _, _ in out.messages) == ["from-0", "from-1"]

    def test_reassembly_timeout_cleans_state(self):
        sim, channel, layers = make_frag_net({(0, 1): 1.0})
        # Inject only one fragment of a 3-fragment message by hand.
        from repro.link.frag import Fragment

        frag = Fragment(message_id=(0, 1), index=0, count=3, nbytes=27,
                        message="x")
        layers[1].on_fragment(frag, src=0)
        assert layers[1].partial_count == 1
        sim.run(until=layers[1].reassembly_timeout + 1.0)
        assert layers[1].partial_count == 0
        assert layers[1].messages_incomplete == 1

    def test_message_counter_distinguishes_messages(self):
        sim, channel, layers = make_frag_net({(0, 1): 1.0})
        out = Collector(layers[1])
        layers[0].send_message("a", 50)
        layers[0].send_message("b", 50)
        sim.run()
        assert sorted(m for m, _, _ in out.messages) == ["a", "b"]


class TestNeighborTable:
    def test_heard_creates_and_updates(self):
        table = NeighborTable()
        table.heard(7, now=1.0)
        table.heard(7, now=5.0)
        entry = table.entry(7)
        assert entry.first_heard == 1.0
        assert entry.last_heard == 5.0
        assert entry.messages_heard == 2

    def test_expire_removes_stale(self):
        table = NeighborTable(expiry=10.0)
        table.heard(1, now=0.0)
        table.heard(2, now=8.0)
        stale = table.expire(now=12.0)
        assert stale == [1]
        assert table.neighbors() == [2]

    def test_is_neighbor(self):
        table = NeighborTable()
        table.heard(3, now=0.0)
        assert table.is_neighbor(3)
        assert not table.is_neighbor(4)

    def test_len(self):
        table = NeighborTable()
        table.heard(1, 0.0)
        table.heard(2, 0.0)
        assert len(table) == 2


class TestEphemeralIds:
    def test_allocation_unique(self):
        alloc = EphemeralIdAllocator(random.Random(1))
        ids = {alloc.allocate() for _ in range(100)}
        assert len(ids) == 100

    def test_release_allows_reuse(self):
        alloc = EphemeralIdAllocator(random.Random(1), id_bits=2)
        ids = [alloc.allocate() for _ in range(4)]
        with pytest.raises(RuntimeError):
            alloc.allocate()
        alloc.release(ids[0])
        assert alloc.allocate() == ids[0]

    def test_collision_redraw(self):
        alloc = EphemeralIdAllocator(random.Random(1))
        first = alloc.allocate()
        second = alloc.observed_collision(first)
        assert second != first or alloc.active == 1
