"""Tests for topology and propagation models."""

import pytest

from repro.radio import (
    DistancePropagation,
    GilbertElliotLink,
    TablePropagation,
    Topology,
)


class TestTopology:
    def test_add_and_query(self):
        topo = Topology()
        topo.add_node(1, 0.0, 0.0)
        topo.add_node(2, 3.0, 4.0)
        assert topo.effective_distance(1, 2) == pytest.approx(5.0)

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node(1, 0.0, 0.0)
        with pytest.raises(ValueError):
            topo.add_node(1, 1.0, 1.0)

    def test_floor_penalty(self):
        topo = Topology(floor_penalty=12.0)
        topo.add_node(1, 0.0, 0.0, floor=0)
        topo.add_node(2, 0.0, 0.0, floor=1)
        assert topo.effective_distance(1, 2) == pytest.approx(12.0)

    def test_grid_factory(self):
        topo = Topology.grid(columns=3, rows=2, spacing=10.0)
        assert len(topo) == 6
        assert topo.effective_distance(0, 2) == pytest.approx(20.0)
        assert topo.effective_distance(0, 3) == pytest.approx(10.0)

    def test_line_factory(self):
        topo = Topology.line(4, spacing=5.0)
        assert len(topo) == 4
        assert topo.effective_distance(0, 3) == pytest.approx(15.0)

    def test_pairs_covers_all_unordered_pairs(self):
        topo = Topology.line(4)
        pairs = list(topo.pairs())
        assert len(pairs) == 6
        assert all(a < b for a, b in pairs)


class TestDistancePropagation:
    def _model(self, **kwargs):
        topo = Topology.line(2, spacing=kwargs.pop("spacing", 10.0))
        return DistancePropagation(topo, **kwargs)

    def test_full_range_is_perfect(self):
        model = self._model(full_range=20.0, max_range=35.0, asymmetry=0.0)
        assert model.link_prr(0, 1, 0.0) == pytest.approx(1.0)

    def test_beyond_max_range_is_zero(self):
        model = self._model(spacing=50.0, full_range=20.0, max_range=35.0)
        assert model.link_prr(0, 1, 0.0) == 0.0

    def test_self_link_is_zero(self):
        model = self._model()
        assert model.link_prr(0, 0, 0.0) == 0.0

    def test_decay_region_monotonic(self):
        topo = Topology.line(2, spacing=1.0)
        model = DistancePropagation(topo, full_range=10.0, max_range=30.0)
        prrs = [model.base_prr(d) for d in (10.0, 15.0, 20.0, 25.0, 30.0)]
        assert prrs[0] == 1.0
        assert prrs[-1] == 0.0
        assert all(a >= b for a, b in zip(prrs, prrs[1:]))

    def test_asymmetry_differs_by_direction(self):
        topo = Topology.line(2, spacing=25.0)
        model = DistancePropagation(
            topo, full_range=20.0, max_range=35.0, asymmetry=0.3, seed=7
        )
        forward = model.link_prr(0, 1, 0.0)
        backward = model.link_prr(1, 0, 0.0)
        assert forward != backward

    def test_asymmetry_stable_within_run(self):
        topo = Topology.line(2, spacing=25.0)
        model = DistancePropagation(topo, asymmetry=0.3, seed=7)
        assert model.link_prr(0, 1, 0.0) == model.link_prr(0, 1, 100.0)

    def test_asymmetry_deterministic_across_instances(self):
        topo = Topology.line(2, spacing=25.0)
        a = DistancePropagation(topo, asymmetry=0.3, seed=7)
        b = DistancePropagation(topo, asymmetry=0.3, seed=7)
        assert a.link_prr(0, 1, 0.0) == b.link_prr(0, 1, 0.0)

    def test_prr_clamped_to_unit_interval(self):
        topo = Topology.line(2, spacing=5.0)
        model = DistancePropagation(topo, asymmetry=0.5, seed=3)
        for t in range(10):
            assert 0.0 <= model.link_prr(0, 1, float(t)) <= 1.0

    def test_invalid_parameters(self):
        topo = Topology.line(2)
        with pytest.raises(ValueError):
            DistancePropagation(topo, full_range=30.0, max_range=20.0)
        with pytest.raises(ValueError):
            DistancePropagation(topo, asymmetry=2.0)


class TestTablePropagation:
    def test_set_and_query(self):
        model = TablePropagation()
        model.set_link(1, 2, 0.9)
        assert model.link_prr(1, 2, 0.0) == 0.9
        assert model.link_prr(2, 1, 0.0) == 0.0

    def test_symmetric_set(self):
        model = TablePropagation()
        model.set_link(1, 2, 0.8, symmetric=True)
        assert model.link_prr(2, 1, 0.0) == 0.8

    def test_constructor_links(self):
        model = TablePropagation({(1, 2): 0.5})
        assert model.link_prr(1, 2, 0.0) == 0.5

    def test_invalid_prr_rejected(self):
        model = TablePropagation()
        with pytest.raises(ValueError):
            model.set_link(1, 2, 1.5)

    def test_remove_link(self):
        model = TablePropagation({(1, 2): 0.5, (2, 1): 0.5})
        model.remove_link(1, 2, symmetric=True)
        assert model.link_prr(1, 2, 0.0) == 0.0
        assert model.link_prr(2, 1, 0.0) == 0.0


class TestGilbertElliot:
    def test_zero_base_stays_zero(self):
        base = TablePropagation()
        model = GilbertElliotLink(base)
        assert model.link_prr(1, 2, 0.0) == 0.0

    def test_good_state_preserves_base_bad_state_scales(self):
        base = TablePropagation({(1, 2): 1.0})
        model = GilbertElliotLink(base, mean_good=10.0, mean_bad=10.0,
                                  bad_scale=0.25, seed=3)
        seen = set()
        for t in range(0, 2000, 5):
            seen.add(round(model.link_prr(1, 2, float(t)), 4))
        assert seen <= {1.0, 0.25}
        assert len(seen) == 2  # both states visited over a long horizon

    def test_state_is_deterministic(self):
        base = TablePropagation({(1, 2): 1.0})
        a = GilbertElliotLink(base, seed=5)
        b = GilbertElliotLink(base, seed=5)
        times = [float(t) for t in range(0, 500, 7)]
        assert [a.link_prr(1, 2, t) for t in times] == [
            b.link_prr(1, 2, t) for t in times
        ]

    def test_invalid_dwell_times(self):
        base = TablePropagation()
        with pytest.raises(ValueError):
            GilbertElliotLink(base, mean_good=0.0)
