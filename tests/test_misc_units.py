"""Coverage for small units not exercised elsewhere: the key registry,
stats counters, and modem bookkeeping."""

import pytest

from repro.mac.base import MacStats
from repro.naming import MatchStats
from repro.naming.keys import (
    ClassValue,
    Key,
    KeyRegistry,
    STANDARD_KEYS,
    key_name,
)


class TestKeyRegistry:
    def test_well_known_keys_preregistered(self):
        registry = KeyRegistry()
        assert int(Key.TYPE) in registry
        assert registry.name(Key.TYPE) == "type"
        assert registry.name(Key.X_COORD) == "x_coord"

    def test_register_allocates_user_keys(self):
        registry = KeyRegistry()
        first = registry.register("soil-moisture")
        second = registry.register("ph")
        assert first >= int(Key.FIRST_USER_KEY)
        assert second == first + 1
        assert registry.name(first) == "soil-moisture"

    def test_unknown_key_gets_fallback_name(self):
        registry = KeyRegistry()
        assert registry.name(987654) == "key987654"

    def test_iteration_covers_registrations(self):
        registry = KeyRegistry()
        custom = registry.register("custom")
        assert custom in set(iter(registry))

    def test_module_level_helpers(self):
        assert key_name(Key.CONFIDENCE) == "confidence"
        assert int(Key.CLASS) in STANDARD_KEYS

    def test_class_values_distinct(self):
        values = [int(v) for v in ClassValue]
        assert len(values) == len(set(values))


class TestStatsResets:
    def test_match_stats_reset(self):
        stats = MatchStats(formals_tested=3, comparisons=9)
        stats.reset()
        assert stats.formals_tested == 0
        assert stats.comparisons == 0

    def test_mac_stats_reset(self):
        stats = MacStats(enqueued=5, transmitted=4, dropped_queue_full=1,
                         backoffs=2)
        stats.reset()
        assert stats.enqueued == 0
        assert stats.transmitted == 0
        assert stats.dropped_queue_full == 0
        assert stats.backoffs == 0


class TestModemBookkeeping:
    def test_turnaround_constant_positive(self):
        from repro.radio import RadioParams

        assert RadioParams().turnaround_s > 0

    def test_rx_counters_track_all_audible_traffic(self):
        """Unicast frames destined elsewhere still cost receive energy
        and count as fragments heard (the radio cannot know in advance)."""
        from repro.radio import Channel, Modem, TablePropagation
        from repro.sim import SeedSequence, Simulator

        sim = Simulator()
        channel = Channel(
            sim, TablePropagation({(0, 1): 1.0, (0, 2): 1.0}),
            seeds=SeedSequence(1),
        )
        modems = [Modem(sim, channel, node_id=i) for i in range(3)]
        modems[0].transmit_fragment("to-1", 10, link_dst=1)
        sim.run()
        assert modems[2].fragments_received == 1
        assert modems[2].bytes_received == 10
