"""Capstone integration: a multi-application sensor network.

The paper's abstract claims "the first description of the software
architecture that supports named data and in-network processing in an
operational, multi-application sensor-network".  This test runs four
applications *concurrently* on one simulated ISI testbed — surveillance
with aggregation, residual-energy scans, topology monitoring, and a
bulk transfer — and verifies each functions while sharing the same
radios, MACs, and diffusion cores.
"""

import pytest

from repro.apps import SurveillanceExperiment
from repro.apps.monitoring import (
    EnergyReporter,
    EnergyScanAggregator,
    EnergyScanSink,
)
from repro.apps.topomon import NeighborReporter, TopologyMonitor
from repro.testbed import FIG8_SINK, FIG8_SOURCES, isi_testbed_network
from repro.transfer import BlockReceiver, BlockSender, split_object

DURATION = 600.0


@pytest.fixture(scope="module")
def multi_app_run():
    net = isi_testbed_network(seed=55)

    # App 1: Figure 8 surveillance with suppression filters everywhere.
    surveillance = SurveillanceExperiment(
        net, FIG8_SINK, FIG8_SOURCES[:2], suppression=True
    )

    # App 2: residual-energy scans, aggregated at a central relay.
    escan_sink = EnergyScanSink(net.api(39))
    EnergyScanAggregator(net.node(21), delay=1.5)
    reporters = [
        EnergyReporter(net.api(node_id), net.stack(node_id).energy,
                       budget=1000.0, interval=45.0)
        for node_id in net.node_ids()
        if node_id != 39
    ]

    # App 3: topology monitoring.
    topo_monitor = TopologyMonitor(net.api(FIG8_SINK))
    topo_reporters = [
        NeighborReporter(net.api(node_id), interval=60.0)
        for node_id in net.node_ids()
    ]

    # App 4: a bulk object transfer across the building.
    payload = bytes((i * 13 + 5) % 256 for i in range(1024))
    transfer_obj = split_object("snapshot", payload)
    transfers = []
    receiver = BlockReceiver(
        net.api(17), "snapshot",
        on_complete=lambda data, stats: transfers.append((data, stats)),
        quiet_timeout=8.0,
        max_repair_rounds=25,
    )
    sender = BlockSender(net.api(22), block_interval=1.0)
    net.sim.schedule(30.0, sender.offer, transfer_obj, 0.0)

    result = surveillance.run(duration=DURATION)
    return {
        "net": net,
        "surveillance": result,
        "escan_sink": escan_sink,
        "topo_monitor": topo_monitor,
        "transfers": transfers,
        "payload": payload,
        "receiver": receiver,
    }


def test_surveillance_still_functions(multi_app_run):
    result = multi_app_run["surveillance"]
    # Sharing the network with three other applications costs delivery
    # (collisions roughly double), but the application keeps working.
    assert result.delivery_ratio >= 0.2
    assert result.distinct_events_received >= 20


def test_energy_scan_functions(multi_app_run):
    sink = multi_app_run["escan_sink"]
    assert sink.digests_received > 0
    assert sink.network_view is not None
    assert sink.network_view.minimum <= 1000.0


def test_topology_monitor_functions(multi_app_run):
    monitor = multi_app_run["topo_monitor"]
    assert monitor.reports_received > 0
    snapshot = monitor.snapshot()
    assert snapshot.node_count >= 8  # most of the testbed heard from


def test_bulk_transfer_completes(multi_app_run):
    transfers = multi_app_run["transfers"]
    assert transfers, (
        f"transfer incomplete; missing "
        f"{multi_app_run['receiver'].missing_blocks()}"
    )
    data, stats = transfers[0]
    assert data == multi_app_run["payload"]


def test_applications_share_one_radio_network(multi_app_run):
    """All traffic really went through the same stacks: the channel's
    fragment counters cover everything the four applications sent."""
    net = multi_app_run["net"]
    assert net.channel.fragments_sent > 1000
    assert net.total_diffusion_messages_sent() > 500
