"""Matching engine: fast-path equivalence, memoization, invalidation.

The fast path (:mod:`repro.naming.engine`) must be *verdict-identical*
to the Figure 2 reference matcher for every input — the randomized
suite below drives both implementations over generated vectors covering
all operators, mixed value types, shared and disjoint keys, duplicate
keys, and empty sets.  The reference matcher itself stays untouched so
the Figure 11 experiment keeps its literal operation counts; a pinned
regression test guards those counts.
"""

import random

import pytest

from repro.core.gradient import GradientTable
from repro.core.messages import MessageType, make_data, make_interest
from repro.naming import (
    Attribute,
    AttributeVector,
    MatchIndex,
    MatchProfile,
    MatchStats,
    Operator,
    fast_one_way_match,
    fast_two_way_match,
    one_way_match,
    two_way_match,
)
from repro.naming.keys import ClassValue, Key


# ---------------------------------------------------------------------------
# Randomized vector generation
# ---------------------------------------------------------------------------

_KEYS = [int(Key.TASK), int(Key.CONFIDENCE), int(Key.LATITUDE), 9001, 9002]
_OPS = list(Operator)


def _random_attribute(rng: random.Random) -> Attribute:
    key = rng.choice(_KEYS)
    op = rng.choice(_OPS)
    if op is Operator.EQ_ANY:
        return Attribute.int32(key, op, 0)
    kind = rng.randrange(4)
    if kind == 0:
        return Attribute.int32(key, op, rng.randrange(-3, 4))
    if kind == 1:
        return Attribute.float64(key, op, rng.choice([-1.5, 0.0, 0.5, 2.5]))
    if kind == 2:
        return Attribute.string(key, op, rng.choice(["a", "b", "c"]))
    return Attribute.blob(key, op, rng.choice([b"x", b"y"]))


def _random_vector(rng: random.Random, max_len: int = 8) -> AttributeVector:
    return AttributeVector(
        _random_attribute(rng) for _ in range(rng.randrange(max_len + 1))
    )


class TestEquivalence:
    """Fast path == Figure 2 reference, over >=10k randomized pairs."""

    def test_one_way_equivalence_randomized(self):
        rng = random.Random(0xD1FF)
        for _ in range(10_000):
            a = _random_vector(rng)
            b = _random_vector(rng)
            assert fast_one_way_match(a, b) == one_way_match(list(a), list(b))
            assert fast_one_way_match(b, a) == one_way_match(list(b), list(a))

    def test_two_way_equivalence_randomized(self):
        rng = random.Random(0xBEEF)
        for _ in range(2_000):
            a = _random_vector(rng)
            b = _random_vector(rng)
            assert fast_two_way_match(a, b) == two_way_match(list(a), list(b))

    def test_match_index_equivalence_randomized(self):
        """The memoizing index returns the same verdicts as the
        reference, including on repeats served from the memo."""
        rng = random.Random(0xCAFE)
        index = MatchIndex(capacity=64)
        pool = [_random_vector(rng) for _ in range(40)]
        for _ in range(4_000):
            a = rng.choice(pool)
            b = rng.choice(pool)
            assert index.one_way(a, b) == one_way_match(list(a), list(b))
        assert index.stats.hits > 0  # repeats actually exercised the memo

    def test_empty_and_formal_only_edges(self):
        empty = AttributeVector()
        formals_only = AttributeVector.of((1, Operator.GT, 5))
        actuals_only = AttributeVector.of((1, Operator.IS, 10))
        for a in (empty, formals_only, actuals_only):
            for b in (empty, formals_only, actuals_only):
                assert fast_one_way_match(a, b) == one_way_match(list(a), list(b))

    def test_plain_sequences_accepted(self):
        # The fast matchers build throwaway profiles for raw lists.
        a = [Attribute.int32(1, Operator.GE, 5)]
        b = [Attribute.int32(1, Operator.IS, 7)]
        assert fast_one_way_match(a, b)
        assert not fast_one_way_match(b + [Attribute.int32(2, Operator.LT, 0)], a)


class TestMatchProfile:
    def test_profile_cached_on_vector(self):
        vec = AttributeVector.of((1, Operator.GT, 5), (2, Operator.IS, 3))
        assert vec.match_profile() is vec.match_profile()

    def test_profile_segregates_and_indexes(self):
        vec = AttributeVector.of(
            (1, Operator.GT, 5), (1, Operator.IS, 3), (2, Operator.IS, 4)
        )
        profile = vec.match_profile()
        assert [a.op for a in profile.formals] == [Operator.GT]
        assert profile.formal_keys == frozenset({1})
        assert profile.actual_keys == frozenset({1, 2})
        assert len(profile.actuals_by_key[1]) == 1

    def test_subset_short_circuit_is_necessary_condition(self):
        interest = AttributeVector.of((1, Operator.EQ, 5), (2, Operator.GT, 0))
        data_missing_key = AttributeVector.of((1, Operator.IS, 5))
        pi = interest.match_profile()
        assert not pi.can_be_satisfied_by(data_missing_key.match_profile())
        assert not fast_one_way_match(interest, data_missing_key)
        assert not one_way_match(list(interest), list(data_missing_key))

    def test_eq_any_still_requires_same_key_actual(self):
        interest = AttributeVector(
            [Attribute.int32(7, Operator.EQ_ANY, 0)]
        )
        assert not fast_one_way_match(interest, AttributeVector())
        assert not one_way_match(list(interest), [])


class TestMatchIndex:
    def _interest(self, task: str) -> AttributeVector:
        return AttributeVector.builder().eq(Key.TASK, task).build()

    def _data(self, task: str, seq: int = 0) -> AttributeVector:
        return (
            AttributeVector.builder()
            .actual(Key.TASK, task)
            .actual(Key.SEQUENCE, seq)
            .build()
        )

    def test_memo_hit_on_repeat(self):
        index = MatchIndex()
        interest, data = self._interest("t"), self._data("t")
        assert index.one_way(interest, data)
        assert index.stats.misses == 1
        assert index.one_way(interest, data)
        assert index.stats.hits == 1
        assert len(index) == 1

    def test_negative_verdicts_are_memoized_too(self):
        index = MatchIndex()
        interest, data = self._interest("t"), self._data("other")
        assert not index.one_way(interest, data)
        assert not index.one_way(interest, data)
        assert index.stats.misses == 1 and index.stats.hits == 1

    def test_short_circuit_skips_memo(self):
        index = MatchIndex()
        interest = self._interest("t")
        no_task = AttributeVector.builder().actual(Key.SEQUENCE, 1).build()
        assert not index.one_way(interest, no_task)
        assert index.stats.short_circuits == 1
        assert len(index) == 0

    def test_lru_eviction_bounds_size(self):
        index = MatchIndex(capacity=2)
        interest = self._interest("t")
        for seq in range(5):
            index.one_way(interest, self._data("t", seq))
        assert len(index) == 2
        assert index.stats.evictions == 3

    def test_invalidate_drops_only_that_interest(self):
        index = MatchIndex()
        i1, i2 = self._interest("one"), self._interest("two")
        data = self._data("one")
        index.one_way(i1, data)
        index.one_way(i2, data)
        assert index.invalidate(i1.digest()) == 1
        assert len(index) == 1
        # i1 recomputes (miss), i2 still memoized (hit).
        misses_before = index.stats.misses
        index.one_way(i1, data)
        assert index.stats.misses == misses_before + 1
        hits_before = index.stats.hits
        index.one_way(i2, data)
        assert index.stats.hits == hits_before + 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MatchIndex(capacity=0)


class TestGradientTableIntegration:
    def _interest(self, task: str) -> AttributeVector:
        return AttributeVector.builder().eq(Key.TASK, task).build()

    def _data(self, task: str) -> AttributeVector:
        return AttributeVector.builder().actual(Key.TASK, task).build()

    def test_matching_data_agrees_with_reference_scan(self):
        rng = random.Random(0xFACE)
        table = GradientTable()
        for _ in range(25):
            entry = table.entry_for(_random_vector(rng, max_len=5))
            entry.local_sink = True
        for _ in range(300):
            data = _random_vector(rng, max_len=5)
            got = {e.digest for e in table.matching_data(data, now=0.0)}
            want = {
                e.digest
                for e in table.entries()
                if one_way_match(list(e.attrs), list(data))
            }
            assert got == want

    def test_sweep_invalidates_match_index(self):
        table = GradientTable()
        entry = table.entry_for(self._interest("t"))
        entry.update_gradient(neighbor=1, now=0.0, timeout=10.0)
        assert table.matching_data(self._data("t"), now=1.0)
        assert len(table.match_index) == 1
        table.sweep(now=100.0)  # gradient expired -> entry dropped
        assert len(table) == 0
        assert len(table.match_index) == 0
        assert table.match_index.stats.invalidations == 1

    def test_entry_add_invalidates_stale_memo(self):
        table = GradientTable()
        attrs = self._interest("t")
        # Populate the memo via a throwaway lookup before the entry
        # exists in the table...
        table.match_index.one_way(attrs, self._data("t"))
        assert len(table.match_index) == 1
        # ...then creating the entry drops the stale verdicts.
        table.entry_for(attrs)
        assert len(table.match_index) == 0

    def test_data_memo_steady_state_and_invalidation(self):
        table = GradientTable()
        entry = table.entry_for(self._interest("t"))
        entry.local_sink = True
        data = self._data("t")
        assert table.matching_data(data, now=0.0) == [entry]
        assert table.matching_data(data, now=0.0) == [entry]
        assert (table.data_memo_hits, table.data_memo_misses) == (1, 1)
        # A table mutation (new interest) drops the candidate memo...
        other = table.entry_for(self._interest("u"))
        other.local_sink = True
        assert table.matching_data(data, now=0.0) == [entry]
        assert table.data_memo_misses == 2
        # ...and so does sweeping an entry out.
        other.local_sink = False
        table.sweep(now=0.0)
        assert table.matching_data(data, now=0.0) == [entry]
        assert table.data_memo_misses == 3

    def test_data_memo_serves_stale_demand_correctly(self):
        """Demand is filtered per lookup, so a memoized candidate list
        stays correct as gradients expire and are refreshed."""
        table = GradientTable()
        entry = table.entry_for(self._interest("t"))
        entry.update_gradient(neighbor=1, now=0.0, timeout=5.0)
        data = self._data("t")
        assert table.matching_data(data, now=1.0) == [entry]
        assert table.matching_data(data, now=20.0) == []  # expired, memo hit
        entry.update_gradient(neighbor=1, now=21.0, timeout=5.0)
        assert table.matching_data(data, now=22.0) == [entry]

    def test_matching_data_excludes_expired_demand(self):
        table = GradientTable()
        entry = table.entry_for(self._interest("t"))
        entry.update_gradient(neighbor=1, now=0.0, timeout=5.0)
        assert table.matching_data(self._data("t"), now=1.0)
        assert not table.matching_data(self._data("t"), now=50.0)


class TestSweepSkipsRebuild:
    def test_interest_entry_sweep_keeps_dicts_when_nothing_expired(self):
        table = GradientTable()
        entry = table.entry_for(
            AttributeVector.builder().eq(Key.TASK, "t").build()
        )
        entry.update_gradient(neighbor=1, now=0.0, timeout=100.0)
        entry.reinforce(data_origin=4, neighbor=1, now=0.0, timeout=100.0)
        gradients, reinforced = entry.gradients, entry.reinforced
        entry.sweep(now=1.0)
        assert entry.gradients is gradients
        assert entry.reinforced is reinforced

    def test_interest_entry_sweep_rebuilds_on_expiry(self):
        table = GradientTable()
        entry = table.entry_for(
            AttributeVector.builder().eq(Key.TASK, "t").build()
        )
        entry.update_gradient(neighbor=1, now=0.0, timeout=1.0)
        entry.update_gradient(neighbor=2, now=0.0, timeout=100.0)
        entry.sweep(now=50.0)
        assert list(entry.gradients) == [2]


class TestMessageMatchingAttrsCache:
    def test_cached_per_message(self):
        attrs = AttributeVector.builder().actual(Key.TASK, "t").build()
        msg = make_data(attrs=attrs, origin=1, exploratory=False)
        assert msg.matching_attrs() is msg.matching_attrs()

    def test_carries_implicit_class_actual(self):
        attrs = AttributeVector.builder().eq(Key.TASK, "t").build()
        msg = make_interest(attrs=attrs, origin=1)
        assert msg.matching_attrs().value_of(Key.CLASS) == int(ClassValue.INTEREST)

    def test_forwarded_copy_rebuilds_cache(self):
        attrs = AttributeVector.builder().actual(Key.TASK, "t").build()
        msg = make_data(attrs=attrs, origin=1, exploratory=True)
        first = msg.matching_attrs()
        copy = msg.forwarded_copy(next_hop=None)
        assert copy.msg_type is MessageType.EXPLORATORY_DATA
        assert copy.matching_attrs() == first


class TestReferenceMatcherFrozen:
    """Figure 11 depends on the reference matcher's literal operation
    counts; pin them for the paper's Figure 10 sets so an accidental
    "optimization" of the reference path fails loudly."""

    def _sets(self):
        interest = [
            Attribute.int32(Key.CLASS, Operator.EQ, int(ClassValue.INTEREST)),
            Attribute.string(Key.TASK, Operator.EQ, "detectAnimal"),
            Attribute.float64(Key.CONFIDENCE, Operator.GT, 50.0),
            Attribute.float64(Key.LATITUDE, Operator.GE, 10.0),
            Attribute.float64(Key.LATITUDE, Operator.LE, 100.0),
            Attribute.float64(Key.LONGITUDE, Operator.GE, 5.0),
            Attribute.float64(Key.LONGITUDE, Operator.LE, 95.0),
            Attribute.string(Key.TARGET, Operator.IS, "4-leg"),
        ]
        data = [
            Attribute.int32(Key.CLASS, Operator.IS, int(ClassValue.DATA)),
            Attribute.string(Key.TASK, Operator.IS, "detectAnimal"),
            Attribute.float64(Key.CONFIDENCE, Operator.IS, 90.0),
            Attribute.float64(Key.LATITUDE, Operator.IS, 20.0),
            Attribute.float64(Key.LONGITUDE, Operator.IS, 80.0),
            Attribute.string(Key.TARGET, Operator.IS, "4-leg"),
        ]
        return interest, data

    def test_reference_operation_counts_pinned(self):
        interest, data = self._sets()
        stats = MatchStats()
        # 'class EQ interest' vs 'class IS data' fails on the first
        # formal after exactly one comparison.
        assert not one_way_match(interest, data, stats)
        assert (stats.formals_tested, stats.comparisons) == (1, 1)
        stats.reset()
        # Dropping the class formal: 6 formals each satisfied by one
        # same-key actual in B.
        assert one_way_match(interest[1:], data, stats)
        assert (stats.formals_tested, stats.comparisons) == (6, 6)
