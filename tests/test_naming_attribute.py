"""Unit tests for Attribute, Operator, and ValueType."""

import pytest

from repro.naming import Attribute, AttributeValueError, Operator, ValueType
from repro.naming.keys import Key


class TestOperator:
    def test_is_actual_only_for_is(self):
        assert Operator.IS.is_actual
        for op in Operator:
            if op is not Operator.IS:
                assert op.is_formal
                assert not op.is_actual

    def test_formal_and_actual_disjoint(self):
        for op in Operator:
            assert op.is_actual != op.is_formal


class TestValueTypeValidation:
    def test_int32_accepts_range(self):
        assert ValueType.INT32.validate(2**31 - 1) == 2**31 - 1
        assert ValueType.INT32.validate(-(2**31)) == -(2**31)

    def test_int32_rejects_overflow(self):
        with pytest.raises(AttributeValueError):
            ValueType.INT32.validate(2**31)

    def test_int32_rejects_bool(self):
        with pytest.raises(AttributeValueError):
            ValueType.INT32.validate(True)

    def test_int32_rejects_float(self):
        with pytest.raises(AttributeValueError):
            ValueType.INT32.validate(1.5)

    def test_float32_round_trips_single_precision(self):
        stored = ValueType.FLOAT32.validate(0.1)
        # 0.1 is not representable in binary32; the stored value must be
        # the binary32 rounding so both sides of the radio agree.
        assert stored != 0.1
        assert abs(stored - 0.1) < 1e-7

    def test_float64_keeps_double_precision(self):
        assert ValueType.FLOAT64.validate(0.1) == 0.1

    def test_nan_rejected(self):
        with pytest.raises(AttributeValueError):
            ValueType.FLOAT64.validate(float("nan"))

    def test_string_requires_str(self):
        with pytest.raises(AttributeValueError):
            ValueType.STRING.validate(b"bytes")

    def test_blob_accepts_bytearray(self):
        assert ValueType.BLOB.validate(bytearray(b"xy")) == b"xy"

    def test_blob_rejects_str(self):
        with pytest.raises(AttributeValueError):
            ValueType.BLOB.validate("text")


class TestAttribute:
    def test_immutable(self):
        attr = Attribute.int32(Key.SEQUENCE, Operator.IS, 5)
        with pytest.raises(AttributeError):
            attr.value = 6

    def test_equality_and_hash(self):
        a = Attribute.int32(Key.SEQUENCE, Operator.IS, 5)
        b = Attribute.int32(Key.SEQUENCE, Operator.IS, 5)
        c = Attribute.int32(Key.SEQUENCE, Operator.IS, 6)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_key_must_be_uint32(self):
        with pytest.raises(AttributeValueError):
            Attribute.int32(-1, Operator.IS, 0)
        with pytest.raises(AttributeValueError):
            Attribute.int32(2**32, Operator.IS, 0)

    def test_wire_size_int(self):
        attr = Attribute.int32(Key.SEQUENCE, Operator.IS, 5)
        assert attr.wire_size() == 8 + 4

    def test_wire_size_string(self):
        attr = Attribute.string(Key.TASK, Operator.IS, "detectAnimal")
        assert attr.wire_size() == 8 + len("detectAnimal")

    def test_repr_uses_key_names(self):
        attr = Attribute.string(Key.TASK, Operator.EQ, "detectAnimal")
        assert "task" in repr(attr)
        assert "EQ" in repr(attr)


class TestCompares:
    """The paper's worked example: 'confidence GT 0.5' semantics."""

    def _formal(self, op, value):
        return Attribute.float64(Key.CONFIDENCE, op, value)

    def _actual(self, value):
        return Attribute.float64(Key.CONFIDENCE, Operator.IS, value)

    def test_gt_matches_larger_actual(self):
        assert self._formal(Operator.GT, 0.5).compares_with(self._actual(0.7))

    def test_gt_rejects_smaller_actual(self):
        assert not self._formal(Operator.GT, 0.5).compares_with(self._actual(0.3))

    def test_gt_rejects_equal_actual(self):
        assert not self._formal(Operator.GT, 0.5).compares_with(self._actual(0.5))

    def test_ge_accepts_equal(self):
        assert self._formal(Operator.GE, 0.5).compares_with(self._actual(0.5))

    def test_lt_le(self):
        assert self._formal(Operator.LT, 0.5).compares_with(self._actual(0.4))
        assert not self._formal(Operator.LT, 0.5).compares_with(self._actual(0.5))
        assert self._formal(Operator.LE, 0.5).compares_with(self._actual(0.5))

    def test_eq_ne(self):
        assert self._formal(Operator.EQ, 0.5).compares_with(self._actual(0.5))
        assert not self._formal(Operator.EQ, 0.5).compares_with(self._actual(0.6))
        assert self._formal(Operator.NE, 0.5).compares_with(self._actual(0.6))

    def test_eq_any_matches_anything(self):
        formal = Attribute.int32(Key.CONFIDENCE, Operator.EQ_ANY, 0)
        assert formal.compares_with(self._actual(123.0))

    def test_int_float_cross_type_comparison(self):
        formal = Attribute.int32(Key.CONFIDENCE, Operator.GT, 50)
        actual = Attribute.float64(Key.CONFIDENCE, Operator.IS, 90.0)
        assert formal.compares_with(actual)

    def test_string_blob_not_cross_comparable(self):
        formal = Attribute.string(Key.TASK, Operator.EQ, "x")
        actual = Attribute.blob(Key.TASK, Operator.IS, b"x")
        assert not formal.compares_with(actual)

    def test_string_equality(self):
        formal = Attribute.string(Key.TASK, Operator.EQ, "detectAnimal")
        actual = Attribute.string(Key.TASK, Operator.IS, "detectAnimal")
        assert formal.compares_with(actual)

    def test_compares_with_requires_formal(self):
        actual = self._actual(0.5)
        with pytest.raises(AttributeValueError):
            actual.compares_with(self._actual(0.5))
