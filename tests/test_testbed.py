"""Tests for network builders and the ISI testbed model."""

import pytest

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio import DistancePropagation, Topology
from repro.sim import Simulator
from repro.testbed import (
    FIG8_SINK,
    FIG8_SOURCES,
    FIG9_AUDIO,
    FIG9_LIGHTS,
    FIG9_USER,
    ISI_NODE_IDS,
    ISI_TENTH_FLOOR,
    IdealNetwork,
    SensorNetwork,
    isi_testbed_network,
    isi_testbed_topology,
)
from repro.testbed.isi import ISI_FULL_RANGE, ISI_MAX_RANGE


class TestIdealNetwork:
    def test_broadcast_reaches_neighbors_only(self):
        sim = Simulator()
        net = IdealNetwork(sim)
        transports = {i: net.add_node(i) for i in range(3)}
        net.connect(0, 1)
        got = {i: [] for i in range(3)}
        for i in (1, 2):
            transports[i].deliver_callback = (
                lambda msg, src, nb, i=i: got[i].append(msg)
            )
        transports[0].send_message("x", 10, None)
        sim.run()
        assert got[1] == ["x"]
        assert got[2] == []

    def test_unicast_requires_link(self):
        sim = Simulator()
        net = IdealNetwork(sim)
        t0, t1 = net.add_node(0), net.add_node(1)
        got = []
        t1.deliver_callback = lambda msg, src, nb: got.append(msg)
        t0.send_message("x", 10, 1)  # no link yet
        sim.run()
        assert got == []
        net.connect(0, 1)
        t0.send_message("y", 10, 1)
        sim.run()
        assert got == ["y"]

    def test_asymmetric_link(self):
        sim = Simulator()
        net = IdealNetwork(sim)
        t0, t1 = net.add_node(0), net.add_node(1)
        net.connect(0, 1, symmetric=False)
        got0, got1 = [], []
        t0.deliver_callback = lambda msg, src, nb: got0.append(msg)
        t1.deliver_callback = lambda msg, src, nb: got1.append(msg)
        t0.send_message("down", 10, None)
        t1.send_message("up", 10, None)
        sim.run()
        assert got1 == ["down"]
        assert got0 == []

    def test_loss_rate_applies(self):
        sim = Simulator()
        net = IdealNetwork(sim, loss=0.5, seed=3)
        t0, t1 = net.add_node(0), net.add_node(1)
        net.connect(0, 1)
        got = []
        t1.deliver_callback = lambda msg, src, nb: got.append(msg)
        for i in range(200):
            sim.schedule(i * 0.1, t0.send_message, i, 10, None)
        sim.run()
        assert 60 < len(got) < 140

    def test_duplicate_node_rejected(self):
        net = IdealNetwork(Simulator())
        net.add_node(1)
        with pytest.raises(ValueError):
            net.add_node(1)

    def test_invalid_loss(self):
        with pytest.raises(ValueError):
            IdealNetwork(Simulator(), loss=1.0)

    def test_disconnect(self):
        sim = Simulator()
        net = IdealNetwork(sim)
        t0, t1 = net.add_node(0), net.add_node(1)
        net.connect(0, 1)
        net.disconnect(0, 1)
        got = []
        t1.deliver_callback = lambda msg, src, nb: got.append(msg)
        t0.send_message("x", 10, None)
        sim.run()
        assert got == []

    def test_transport_counters(self):
        sim = Simulator()
        net = IdealNetwork(sim)
        t0 = net.add_node(0)
        t0.send_message("x", 42, None)
        assert t0.bytes_sent == 42
        assert t0.messages_sent == 1


class TestSensorNetwork:
    def test_builds_full_stack_per_node(self):
        net = SensorNetwork(Topology.line(3, spacing=10.0))
        assert net.node_ids() == [0, 1, 2]
        stack = net.stack(1)
        assert stack.modem.node_id == 1
        assert stack.diffusion.node_id == 1
        assert isinstance(stack.api, DiffusionRouting)

    def test_deterministic_given_seed(self):
        def run(seed):
            net = SensorNetwork(Topology.line(4, spacing=15.0), seed=seed)
            received = []
            sub = AttributeVector.builder().eq(Key.TYPE, "t").build()
            net.api(0).subscribe(sub, lambda a, m: received.append(net.sim.now))
            pub = net.api(3).publish(
                AttributeVector.builder().actual(Key.TYPE, "t").build()
            )
            for i in range(5):
                net.sim.schedule(
                    2.0 + i, net.api(3).send, pub,
                    AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
                )
            net.run(until=20.0)
            return received

        assert run(5) == run(5)
        # A different seed gives (almost surely) different timings.
        assert run(5) != run(6) or len(run(5)) != len(run(6))

    def test_fail_node_goes_silent(self):
        # Spacing chosen so 0 and 2 are far out of range of each other
        # and node 1 is the only possible relay.
        net = SensorNetwork(Topology.line(3, spacing=18.0))
        net.fail_node(1)
        sub = AttributeVector.builder().eq(Key.TYPE, "t").build()
        received = []
        net.api(0).subscribe(sub, lambda a, m: received.append(a))
        pub = net.api(2).publish(
            AttributeVector.builder().actual(Key.TYPE, "t").build()
        )
        net.sim.schedule(2.0, net.api(2).send, pub,
                         AttributeVector.builder().actual(Key.SEQUENCE, 0).build())
        net.run(until=10.0)
        assert received == []  # the only relay is dead

    def test_traffic_accounting(self):
        net = SensorNetwork(Topology.line(2, spacing=10.0))
        sub = AttributeVector.builder().eq(Key.TYPE, "t").build()
        net.api(0).subscribe(sub, lambda a, m: None)
        net.run(until=5.0)
        assert net.total_diffusion_messages_sent() >= 2  # interest x2 nodes
        assert net.total_diffusion_bytes_sent() > 0
        # The radio adds per-fragment overhead on top of diffusion bytes.
        assert net.total_radio_bytes_sent() > net.total_diffusion_bytes_sent()

    def test_energy_accounted(self):
        net = SensorNetwork(Topology.line(2, spacing=10.0))
        sub = AttributeVector.builder().eq(Key.TYPE, "t").build()
        net.api(0).subscribe(sub, lambda a, m: None)
        net.run(until=5.0)
        assert net.total_energy(elapsed=5.0) > 0
        assert net.stack(0).energy.time_sending > 0


class TestIsiTestbed:
    def test_fourteen_nodes(self):
        topo = isi_testbed_topology()
        assert len(topo) == 14
        assert len(ISI_NODE_IDS) == 14

    def test_paper_node_ids_present(self):
        """Node ids the paper names: sink 28, sources/lights, audio 20,
        user 39, the 20-2x long link, tenth-floor nodes 11/13/16."""
        for node_id in (28, 25, 16, 22, 13, 20, 39, 11, 21):
            assert node_id in ISI_NODE_IDS

    def test_tenth_floor_nodes(self):
        """'Light nodes (11, 13, 16) are on the 10th floor.'"""
        topo = isi_testbed_topology()
        for node_id in ISI_TENTH_FLOOR:
            assert topo.position(node_id).floor == 0
        for node_id in set(ISI_NODE_IDS) - set(ISI_TENTH_FLOOR):
            assert topo.position(node_id).floor == 1

    def test_roles_are_testbed_nodes(self):
        assert FIG8_SINK in ISI_NODE_IDS
        assert all(s in ISI_NODE_IDS for s in FIG8_SOURCES)
        assert FIG9_USER in ISI_NODE_IDS
        assert FIG9_AUDIO in ISI_NODE_IDS
        assert all(l in ISI_NODE_IDS for l in FIG9_LIGHTS)

    def test_network_is_multi_hop(self):
        """'the network is typically 5 hops across': the sink and the
        sources must not be within radio range of each other."""
        topo = isi_testbed_topology()
        prop = DistancePropagation(
            topo, full_range=ISI_FULL_RANGE, max_range=ISI_MAX_RANGE
        )
        for source in FIG8_SOURCES:
            assert prop.link_prr(source, FIG8_SINK, 0.0) == 0.0

    def test_lights_one_hop_from_audio(self):
        """'It is one hop from the light sensors to the audio sensor.'"""
        topo = isi_testbed_topology()
        prop = DistancePropagation(
            topo, full_range=ISI_FULL_RANGE, max_range=ISI_MAX_RANGE
        )
        for light in FIG9_LIGHTS:
            assert prop.link_prr(light, FIG9_AUDIO, 0.0) > 0.5

    def test_user_not_adjacent_to_audio(self):
        """'two hops from there to the user node.'"""
        topo = isi_testbed_topology()
        prop = DistancePropagation(
            topo, full_range=ISI_FULL_RANGE, max_range=ISI_MAX_RANGE
        )
        assert prop.link_prr(FIG9_AUDIO, FIG9_USER, 0.0) < 0.3

    def test_sources_multiple_hops_from_sink_but_connected(self):
        """Interest from the sink must reach every source (the network
        is connected) over multiple hops."""
        net = isi_testbed_network(seed=1)
        sub = AttributeVector.builder().eq(Key.TYPE, "reach").build()
        net.api(FIG8_SINK).subscribe(sub, lambda a, m: None)
        net.run(until=10.0)
        for source in FIG8_SOURCES:
            assert len(net.node(source).gradients) == 1

    def test_network_factory_applies_config(self):
        config = DiffusionConfig(interest_interval=30.0, gradient_timeout=90.0)
        net = isi_testbed_network(seed=1, config=config)
        assert net.node(FIG8_SINK).config.interest_interval == 30.0


class TestMacFactory:
    def test_custom_mac_deployed_on_every_node(self):
        from repro.mac import DutyCycledCsmaMac

        def factory(sim, modem, rng, queue_limit):
            return DutyCycledCsmaMac(
                sim, modem, duty_cycle=0.5, period=1.0, rng=rng,
                queue_limit=queue_limit,
            )

        net = SensorNetwork(Topology.line(3, spacing=15.0), mac_factory=factory)
        for node_id in net.node_ids():
            mac = net.stack(node_id).mac
            assert isinstance(mac, DutyCycledCsmaMac)
            assert mac.duty_cycle == 0.5
            assert net.stack(node_id).energy.duty_cycle == 0.5

    def test_duty_cycled_network_still_delivers(self):
        from repro.mac import DutyCycledCsmaMac

        def factory(sim, modem, rng, queue_limit):
            return DutyCycledCsmaMac(
                sim, modem, duty_cycle=0.3, period=1.0, rng=rng,
                queue_limit=queue_limit,
            )

        net = SensorNetwork(
            Topology.line(3, spacing=15.0), seed=8, mac_factory=factory
        )
        received = []
        sub = AttributeVector.builder().eq(Key.TYPE, "t").build()
        net.api(0).subscribe(sub, lambda a, m: received.append(a))
        pub = net.api(2).publish(
            AttributeVector.builder().actual(Key.TYPE, "t").build()
        )
        for i in range(5):
            net.sim.schedule(
                2.0 + 2 * i, net.api(2).send, pub,
                AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
            )
        net.run(until=60.0)
        assert len(received) >= 3


class TestTestbedMap:
    def test_map_contains_all_nodes_and_roles(self):
        from repro.testbed import format_testbed_map

        art = format_testbed_map()
        for node_id in ISI_NODE_IDS:
            assert str(node_id) in art
        for bracketed in ISI_TENTH_FLOOR:
            assert f"[{bracketed}]" in art
        assert "sink=28" in art
