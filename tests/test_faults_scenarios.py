"""End-to-end resilience scenarios: four fault types, each invariant-
monitored and required to reconverge within a bounded number of
exploratory intervals, plus the bit-identical replay guarantee."""

import json

import pytest

from repro.faults import (
    FaultPlan,
    builtin_names,
    builtin_plan,
    clock_skew_run,
    resilience_run,
)
from repro.faults.cli import main as faults_cli

#: reconvergence bound for all scenario assertions: repair must land
#: within this many exploratory intervals of the heal.
K_INTERVALS = 4.0


def assert_reconverged(result):
    assert result["invariants_ok"], result["violations"]
    fault = result["report"]["faults"][0]
    assert fault["time_to_repair"] is not None, "never repaired"
    assert fault["repair_intervals"] <= K_INTERVALS
    assert fault["delivery_after"] is not None
    assert fault["delivery_after"] > 0.2


class TestReconvergence:
    def test_crash_reboot_reconverges(self):
        result = resilience_run(
            fault="crash", seed=7, duration=140.0, exploratory_interval=8.0
        )
        assert_reconverged(result)
        # The reboot wiped state (clear_state True is in the timeline).
        heal = [e for e in result["timeline"] if e["phase"] == "heal"][0]
        assert heal["clear_state"] is True

    def test_link_flap_reconverges(self):
        result = resilience_run(
            fault="link-flap", seed=7, duration=140.0, exploratory_interval=8.0
        )
        assert_reconverged(result)
        # Three flaps = three inject/heal pairs.
        assert len(result["timeline"]) == 6

    def test_partition_heal_on_twelve_node_grid(self):
        # Satellite: the 4x3 (12-node) grid splits down the middle for
        # 50 s — twice the 25 s gradient lifetime, so every cross-cut
        # gradient expires — then heals.  Delivery must collapse during
        # the cut and resume within K_INTERVALS exploratory intervals.
        result = resilience_run(
            fault="partition", seed=7, duration=160.0, exploratory_interval=8.0
        )
        assert_reconverged(result)
        fault = result["report"]["faults"][0]
        assert fault["heal_at"] - fault["inject_at"] == pytest.approx(50.0)
        assert fault["delivery_during"] < 0.2

    def test_clock_skew_resyncs_within_rounds(self):
        result = clock_skew_run(seed=3)
        assert result["invariants_ok"], result["violations"]
        # The skew actually landed...
        peak = max(error for _, error in result["errors"])
        assert peak >= result["skew"] * 0.9
        # ...and sync rounds pulled the clock back within two rounds.
        assert result["repaired_at"] is not None
        assert result["repair_rounds"] <= 2.0

    def test_corruption_window_reconverges(self):
        result = resilience_run(
            fault="corruption", seed=7, duration=140.0, exploratory_interval=8.0
        )
        assert_reconverged(result)
        assert result["fragments_corrupted"] > 0


class TestDeterminism:
    def test_seeded_run_replays_bit_identically(self):
        kwargs = dict(
            fault="crash", seed=11, duration=120.0, exploratory_interval=8.0
        )
        first = resilience_run(**kwargs)
        second = resilience_run(**kwargs)
        assert first == second

    def test_different_seeds_differ(self):
        first = resilience_run(fault="crash", seed=1, duration=100.0)
        second = resilience_run(fault="crash", seed=2, duration=100.0)
        assert first["report"] != second["report"]

    def test_result_is_json_safe(self):
        result = resilience_run(fault="brownout", seed=4, duration=100.0)
        restored = json.loads(json.dumps(result))
        assert restored["fault"] == "brownout"


class TestBuiltins:
    def test_every_builtin_plan_validates_on_the_grid(self):
        for name in builtin_names():
            builtin_plan(name).validate(range(12))

    def test_unknown_builtin_rejected(self):
        from repro.faults import PlanError

        with pytest.raises(PlanError, match="unknown builtin"):
            builtin_plan("asteroid")


class TestCli:
    def test_validate_accepts_good_plan(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(builtin_plan("partition").to_json()))
        assert faults_cli(["validate", str(plan_file)]) == 0
        assert "plan OK" in capsys.readouterr().out

    def test_validate_rejects_bad_plan(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(
            {"actions": [{"kind": "node-crash", "node": 99, "at": 1.0}]}
        ))
        assert faults_cli(["validate", str(plan_file)]) == 1
        assert "invalid plan" in capsys.readouterr().err

    def test_run_and_report_round_trip(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        rc = faults_cli([
            "run", "--fault", "crash", "--seed", "3",
            "--duration", "100", "--out", str(out),
        ])
        assert rc == 0
        capsys.readouterr()
        assert faults_cli(["report", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "node-crash" in rendered
        assert "invariants: all held" in rendered

    def test_run_custom_plan(self, tmp_path, capsys):
        plan = FaultPlan.from_json(builtin_plan("link-flap").to_json())
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(plan.to_json()))
        rc = faults_cli([
            "run", "--plan", str(plan_file), "--seed", "3", "--duration", "100",
        ])
        assert rc == 0
        assert "fault=custom" in capsys.readouterr().out
