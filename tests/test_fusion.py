"""Tests for collaborative signal processing (fusion + tracking)."""

import math

import pytest

from repro.apps.fusion import (
    FusionFilter,
    MovingTarget,
    ProximitySensor,
    TrackingSink,
)
from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.radio import Topology
from repro.sim import Simulator
from repro.testbed import IdealNetwork


class TestMovingTarget:
    def test_positions_along_path(self):
        target = MovingTarget(start=(0, 0), end=(100, 0), speed=10.0)
        assert target.position_at(0.0) == (0, 0)
        x, y = target.position_at(5.0)
        assert x == pytest.approx(50.0)
        assert target.position_at(100.0) == (100.0, 0.0)  # clamped at end

    def test_departure_delay(self):
        target = MovingTarget(start=(0, 0), end=(10, 0), speed=1.0,
                              depart_at=5.0)
        assert target.position_at(3.0) == (0, 0)
        assert target.position_at(6.0)[0] == pytest.approx(1.0)
        assert target.arrival_time == pytest.approx(15.0)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            MovingTarget((0, 0), (1, 0), speed=0.0)


class TestFusionMath:
    def test_fuse_confidences_independence(self):
        assert FusionFilter.fuse_confidences([0.5, 0.5]) == pytest.approx(0.75)
        assert FusionFilter.fuse_confidences([0.9]) == pytest.approx(0.9)
        assert FusionFilter.fuse_confidences([]) == 0.0

    def test_fused_confidence_at_least_best_single(self):
        values = [0.3, 0.6, 0.2]
        assert FusionFilter.fuse_confidences(values) >= max(values)

    def test_weighted_centroid(self):
        observations = [(0.0, 0.0, 1.0), (10.0, 0.0, 3.0)]
        x, y = FusionFilter.weighted_centroid(observations)
        assert x == pytest.approx(7.5)
        assert y == 0.0

    def test_centroid_zero_weights_falls_back_to_mean(self):
        observations = [(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]
        assert FusionFilter.weighted_centroid(observations) == (5.0, 5.0)


class TestProximitySensor:
    def test_confidence_decays_with_distance(self):
        sim = Simulator()
        net = IdealNetwork(sim)
        topo = Topology()
        topo.add_node(0, 0.0, 0.0)
        target = MovingTarget((0, 0), (1, 0), speed=0.001)
        api = DiffusionRouting(DiffusionNode(sim, 0, net.add_node(0)))
        sensor = ProximitySensor(api, target, topo, sense_range=25.0)
        assert sensor.confidence_for(0.0) == pytest.approx(0.95)
        assert sensor.confidence_for(10.0) < sensor.confidence_for(5.0)
        assert sensor.confidence_for(26.0) == 0.0


def build_tracking_field(with_fusion: bool):
    """A line of 4 sensors feeding relay 4, sink at 5; target crosses
    the sensor line."""
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01)
    topo = Topology()
    sensor_ids = [0, 1, 2, 3]
    for i in sensor_ids:
        topo.add_node(i, i * 12.0, 0.0)
    topo.add_node(4, 18.0, 15.0)   # relay / fusion point
    topo.add_node(5, 18.0, 30.0)   # sink
    config = DiffusionConfig(reinforcement_jitter=0.05)
    nodes, apis = {}, {}
    for i in topo.node_ids():
        nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(nodes[i])
    for i in sensor_ids:
        net.connect(i, 4)
    net.connect(4, 5)
    target = MovingTarget(start=(-10.0, 0.0), end=(50.0, 0.0), speed=2.0,
                          depart_at=2.0)
    fusion = FusionFilter(nodes[4], delay=0.5) if with_fusion else None
    sink = TrackingSink(apis[5], target, sample_interval=2.0)
    sensors = [
        ProximitySensor(apis[i], target, topo, sample_interval=2.0)
        for i in sensor_ids
    ]
    return sim, sink, sensors, fusion, nodes, target


class TestTracking:
    def test_track_follows_target(self):
        sim, sink, sensors, fusion, nodes, target = build_tracking_field(True)
        sim.run(until=40.0)
        assert len(sink.track) >= 5
        error = sink.mean_error()
        assert error is not None
        # Estimates stay within the sensor geometry's resolution.
        assert error < 15.0
        # The track's x estimates advance with the target.
        xs = [p.x for p in sink.track]
        assert xs[-1] > xs[0]

    def test_fusion_combines_multiple_sensors(self):
        sim, sink, sensors, fusion, nodes, target = build_tracking_field(True)
        sim.run(until=40.0)
        assert fusion.fusions >= 5
        assert fusion.reports_fused >= 1  # overlapping coverage existed
        # Fused confidence can exceed any single sensor's cap.
        assert any(p.confidence > 0.95 for p in sink.track)

    def test_fusion_reduces_sink_traffic(self):
        def deliveries(with_fusion):
            sim, sink, sensors, fusion, nodes, target = build_tracking_field(
                with_fusion
            )
            sim.run(until=40.0)
            return nodes[5].stats.events_delivered, len(sink.track)

        fused_msgs, fused_track = deliveries(True)
        raw_msgs, raw_track = deliveries(False)
        assert fused_msgs < raw_msgs
        assert fused_track >= 5  # the track survives fusion

    def test_fusion_filter_remove(self):
        sim, sink, sensors, fusion, nodes, target = build_tracking_field(True)
        sim.run(until=10.0)
        fusion.remove()
        assert not fusion._pending
