"""Tests for AttributeVector and the wire codec."""

import pytest

from repro.naming import (
    Attribute,
    AttributeVector,
    Operator,
    ValueType,
    decode_attributes,
    encode_attributes,
    encoded_size,
)
from repro.naming.keys import Key
from repro.naming.wire import WireFormatError


def sample_vector() -> AttributeVector:
    return (
        AttributeVector.builder()
        .eq(Key.TYPE, "four-legged-animal-search")
        .actual(Key.INTERVAL, 20)
        .actual(Key.DURATION, 10)
        .ge(Key.X_COORD, -100.0)
        .le(Key.X_COORD, 200.0)
        .ge(Key.Y_COORD, 100.0)
        .le(Key.Y_COORD, 400.0)
        .build()
    )


class TestAttributeVector:
    def test_len_and_iteration(self):
        vec = sample_vector()
        assert len(vec) == 7
        assert all(isinstance(a, Attribute) for a in vec)

    def test_immutability(self):
        vec = sample_vector()
        with pytest.raises(AttributeError):
            vec._attrs = ()

    def test_find_by_key_and_op(self):
        vec = sample_vector()
        assert vec.find(Key.INTERVAL).value == 20
        assert vec.find(Key.X_COORD, Operator.GE).value == -100.0
        assert vec.find(Key.X_COORD, Operator.LE).value == 200.0
        assert vec.find(Key.CONFIDENCE) is None

    def test_find_all(self):
        vec = sample_vector()
        assert len(vec.find_all(Key.X_COORD)) == 2

    def test_value_of_only_returns_actuals(self):
        vec = sample_vector()
        assert vec.value_of(Key.INTERVAL) == 20
        # TYPE is present only as a formal (EQ), so no actual value.
        assert vec.value_of(Key.TYPE) is None
        assert vec.value_of(Key.TYPE, "fallback") == "fallback"

    def test_has_actual(self):
        vec = sample_vector()
        assert vec.has_actual(Key.INTERVAL)
        assert not vec.has_actual(Key.TYPE)

    def test_with_attribute_returns_new_vector(self):
        vec = sample_vector()
        extended = vec.with_attribute(
            Attribute.int32(Key.SEQUENCE, Operator.IS, 9)
        )
        assert len(extended) == len(vec) + 1
        assert len(vec) == 7

    def test_without_key(self):
        vec = sample_vector().without_key(Key.X_COORD)
        assert vec.find(Key.X_COORD) is None
        assert len(vec) == 5

    def test_replace_actual(self):
        vec = sample_vector().replace_actual(Key.INTERVAL, 50)
        assert vec.value_of(Key.INTERVAL) == 50

    def test_replace_actual_missing_raises(self):
        with pytest.raises(KeyError):
            sample_vector().replace_actual(Key.CONFIDENCE, 1)

    def test_of_with_triples(self):
        vec = AttributeVector.of(
            (int(Key.TYPE), Operator.EQ, "light"),
            (int(Key.SEQUENCE), Operator.IS, 3),
        )
        assert len(vec) == 2
        assert vec[1].type is ValueType.INT32

    def test_bool_rejected_in_builder(self):
        with pytest.raises(TypeError):
            AttributeVector.builder().actual(Key.SEQUENCE, True).build()

    def test_equality_is_order_sensitive(self):
        a = AttributeVector.of((int(Key.SEQUENCE), Operator.IS, 1),
                               (int(Key.INTERVAL), Operator.IS, 2))
        b = AttributeVector.of((int(Key.INTERVAL), Operator.IS, 2),
                               (int(Key.SEQUENCE), Operator.IS, 1))
        assert a != b

    def test_digest_is_order_insensitive(self):
        a = AttributeVector.of((int(Key.SEQUENCE), Operator.IS, 1),
                               (int(Key.INTERVAL), Operator.IS, 2))
        b = AttributeVector.of((int(Key.INTERVAL), Operator.IS, 2),
                               (int(Key.SEQUENCE), Operator.IS, 1))
        assert a.digest() == b.digest()

    def test_digest_distinguishes_values(self):
        a = AttributeVector.of((int(Key.SEQUENCE), Operator.IS, 1))
        b = AttributeVector.of((int(Key.SEQUENCE), Operator.IS, 2))
        assert a.digest() != b.digest()

    def test_digest_distinguishes_operator(self):
        a = AttributeVector.of((int(Key.SEQUENCE), Operator.IS, 1))
        b = AttributeVector.of((int(Key.SEQUENCE), Operator.EQ, 1))
        assert a.digest() != b.digest()


class TestWireCodec:
    def test_round_trip(self):
        vec = sample_vector()
        data = encode_attributes(list(vec))
        decoded, consumed = decode_attributes(data)
        assert consumed == len(data)
        assert AttributeVector(decoded) == vec

    def test_round_trip_all_types(self):
        attrs = [
            Attribute.int32(Key.SEQUENCE, Operator.IS, -7),
            Attribute.float32(Key.CONFIDENCE, Operator.GT, 0.25),
            Attribute.float64(Key.LATITUDE, Operator.IS, 34.0522),
            Attribute.string(Key.TASK, Operator.EQ, "détect"),
            Attribute.blob(Key.PAYLOAD, Operator.IS, bytes(range(16))),
        ]
        decoded, _ = decode_attributes(encode_attributes(attrs))
        assert decoded == attrs

    def test_encoded_size_matches_actual_encoding(self):
        vec = sample_vector()
        assert encoded_size(list(vec)) == len(encode_attributes(list(vec)))

    def test_empty_list(self):
        data = encode_attributes([])
        decoded, consumed = decode_attributes(data)
        assert decoded == []
        assert consumed == 2

    def test_truncated_header_raises(self):
        data = encode_attributes([Attribute.int32(Key.SEQUENCE, Operator.IS, 1)])
        with pytest.raises(WireFormatError):
            decode_attributes(data[:4])

    def test_truncated_payload_raises(self):
        data = encode_attributes([Attribute.int32(Key.SEQUENCE, Operator.IS, 1)])
        with pytest.raises(WireFormatError):
            decode_attributes(data[:-2])

    def test_garbage_type_raises(self):
        data = bytearray(encode_attributes([Attribute.int32(Key.SEQUENCE, Operator.IS, 1)]))
        data[6] = 0xEE  # type byte
        with pytest.raises(WireFormatError):
            decode_attributes(bytes(data))

    def test_paper_sized_event_message(self):
        """Paper Section 6.1: events are 112-byte messages; make sure a
        realistic detection vector fits in that envelope."""
        vec = (
            AttributeVector.builder()
            .actual(Key.TYPE, "four-legged-animal-search")
            .actual(Key.INSTANCE, "elephant")
            .actual(Key.X_COORD, 125.0)
            .actual(Key.Y_COORD, 220.0)
            .actual(Key.INTENSITY, 0.6)
            .actual(Key.CONFIDENCE, 0.85)
            .actual(Key.TIMESTAMP, 80)
            .actual(Key.CLASS, 2)
            .build()
        )
        assert encoded_size(list(vec)) <= 150
