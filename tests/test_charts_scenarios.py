"""Tests for ASCII charts and canned scenarios."""

import pytest

from repro.analysis.charts import bar_chart, line_chart
from repro.core import DiffusionConfig
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.testbed.scenarios import (
    diamond_scenario,
    grid_scenario,
    ideal_line,
    line_scenario,
)


class TestLineChart:
    def test_renders_all_series_markers(self):
        chart = line_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20,
            height=8,
        )
        assert "o=a" in chart
        assert "x=b" in chart
        assert "o" in chart.splitlines()[0] or any(
            "o" in line for line in chart.splitlines()
        )

    def test_title_and_labels(self):
        chart = line_chart(
            {"s": [(0, 5), (10, 15)]},
            title="T", x_label="X", y_label="Y",
        )
        assert chart.splitlines()[0] == "T"
        assert "X" in chart
        assert "Y" in chart

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_flat_series_does_not_crash(self):
        chart = line_chart({"a": [(0, 5.0), (1, 5.0)]})
        assert "o" in chart

    def test_axis_extremes_labelled(self):
        chart = line_chart({"a": [(2, 10), (8, 90)]}, width=30, height=6)
        assert "90" in chart
        assert "10" in chart
        assert "2" in chart
        assert "8" in chart


class TestBarChart:
    def test_bars_proportional(self):
        chart = bar_chart({"small": 1.0, "big": 10.0}, width=20)
        lines = chart.splitlines()
        small = next(l for l in lines if l.strip().startswith("small"))
        big = next(l for l in lines if l.strip().startswith("big"))
        assert big.count("#") > small.count("#")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_zero_values(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in chart


class TestScenarios:
    def test_line_scenario_roles(self):
        scenario = line_scenario(hops=3)
        assert scenario.roles["sink"] == 0
        assert scenario.roles["source"] == 3
        assert scenario.api("sink").node_id == 0

    def test_line_scenario_delivers(self):
        scenario = line_scenario(hops=3, seed=4)
        received = []
        sub = AttributeVector.builder().eq(Key.TYPE, "x").build()
        scenario.api("sink").subscribe(sub, lambda a, m: received.append(a))
        pub = scenario.api("source").publish(
            AttributeVector.builder().actual(Key.TYPE, "x").build()
        )
        scenario.network.sim.schedule(
            2.0, scenario.api("source").send, pub,
            AttributeVector.builder().actual(Key.SEQUENCE, 0).build(),
        )
        scenario.network.run(until=10.0)
        assert len(received) == 1

    def test_grid_scenario_size(self):
        scenario = grid_scenario(columns=4, rows=3)
        assert len(scenario.network.node_ids()) == 12
        assert scenario.roles["source"] == 11

    def test_diamond_scenario_two_paths(self):
        scenario = diamond_scenario(seed=2)
        topo = scenario.network.topology
        # Both relays are within range of sink and source; the direct
        # sink-source link is out of range.
        from repro.testbed.isi import ISI_FULL_RANGE

        assert topo.effective_distance(0, 3) > 30.0
        assert topo.effective_distance(0, 1) < 20.0
        assert topo.effective_distance(1, 3) < 20.0
        assert topo.effective_distance(0, 2) < 20.0

    def test_ideal_line_builder(self):
        sim, net, nodes, apis = ideal_line(
            2, config=DiffusionConfig(reinforcement_jitter=0.05)
        )
        assert sorted(nodes) == [0, 1, 2]
        received = []
        sub = AttributeVector.builder().eq(Key.TYPE, "x").build()
        apis[0].subscribe(sub, lambda a, m: received.append(a))
        pub = apis[2].publish(
            AttributeVector.builder().actual(Key.TYPE, "x").build()
        )
        sim.schedule(1.0, apis[2].send, pub,
                     AttributeVector.builder().actual(Key.SEQUENCE, 1).build())
        sim.run(until=5.0)
        assert len(received) == 1
