"""Tests for the query language and query proxy."""

import pytest

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.declarative import DeclarativeRoutingNode
from repro.naming import AttributeVector, Operator
from repro.naming.keys import Key
from repro.query import QueryProxy, QuerySyntaxError, parse_query
from repro.sim import Simulator
from repro.testbed import IdealNetwork


class TestParser:
    def test_minimal_query(self):
        q = parse_query("SELECT audio")
        assert q.select_type == "audio"
        assert q.conditions == []
        assert q.every_ms is None

    def test_where_comparisons(self):
        q = parse_query("SELECT seismic WHERE confidence > 0.5 AND x <= 100")
        assert len(q.conditions) == 2
        assert q.conditions[0].op is Operator.GT
        assert q.conditions[0].value == 0.5
        assert q.conditions[1].op is Operator.LE
        assert q.conditions[1].value == 100

    def test_between_folds_to_ge_le(self):
        q = parse_query("SELECT t WHERE x BETWEEN 0 AND 20")
        assert len(q.conditions) == 2
        assert q.conditions[0].op is Operator.GE
        assert q.conditions[0].value == 0
        assert q.conditions[1].op is Operator.LE
        assert q.conditions[1].value == 20

    def test_every_and_for(self):
        q = parse_query("SELECT t EVERY 2s FOR 10m")
        assert q.every_ms == 2000
        assert q.for_seconds == 600

    def test_every_milliseconds(self):
        assert parse_query("SELECT t EVERY 500ms").every_ms == 500

    def test_duration_with_space(self):
        assert parse_query("SELECT t EVERY 2 s").every_ms == 2000

    def test_string_values(self):
        q = parse_query("SELECT t WHERE instance = 'light-16'")
        assert q.conditions[0].value == "light-16"
        q2 = parse_query('SELECT t WHERE target = "4-leg"')
        assert q2.conditions[0].value == "4-leg"

    def test_bare_identifier_value(self):
        q = parse_query("SELECT t WHERE target = lion")
        assert q.conditions[0].value == "lion"

    def test_case_insensitive_keywords(self):
        q = parse_query("select audio where x > 1 every 1s for 5s")
        assert q.select_type == "audio"
        assert q.every_ms == 1000

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "WHERE x > 1",
            "SELECT",
            "SELECT t WHERE bogus > 1",
            "SELECT t WHERE x ~ 1",
            "SELECT t WHERE x BETWEEN 20 AND 0",
            "SELECT t WHERE x BETWEEN 'a' AND 'b'",
            "SELECT t EVERY -2s",
            "SELECT t EVERY bananas",
            "SELECT t garbage trailing",
            "SELECT t WHERE x > 1 AND",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)

    def test_compiles_to_interest(self):
        q = parse_query(
            "SELECT audio WHERE x BETWEEN 0 AND 50 AND confidence > 0.5 "
            "EVERY 2s FOR 60s"
        )
        interest = q.to_interest()
        assert interest.find(Key.TYPE, Operator.EQ).value == "audio"
        assert interest.find(Key.X_COORD, Operator.GE).value == 0.0
        assert interest.find(Key.X_COORD, Operator.LE).value == 50.0
        assert interest.find(Key.CONFIDENCE, Operator.GT).value == 0.5
        assert interest.value_of(Key.INTERVAL) == 2000
        assert interest.value_of(Key.DURATION) == 60

    def test_interest_matches_conforming_data(self):
        from repro.naming import one_way_match

        interest = parse_query(
            "SELECT audio WHERE x BETWEEN 0 AND 50 AND confidence > 0.5"
        ).to_interest()
        good = (
            AttributeVector.builder()
            .actual(Key.TYPE, "audio")
            .actual(Key.X_COORD, 25.0)
            .actual(Key.CONFIDENCE, 0.9)
            .build()
        )
        bad = good.replace_actual(Key.X_COORD, 60.0)
        assert one_way_match(list(interest), list(good))
        assert not one_way_match(list(interest), list(bad))


def build_net(node_class, n=3):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01)
    apis = {}
    config = DiffusionConfig(reinforcement_jitter=0.05)
    for i in range(n):
        node = node_class(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(node)
    for i in range(n - 1):
        net.connect(i, i + 1)
    return sim, apis


def run_sensor(sim, api, x, confidence, count=4):
    pub = api.publish(
        AttributeVector.builder()
        .actual(Key.TYPE, "audio")
        .actual(Key.X_COORD, x)
        .build()
    )
    for i in range(count):
        sim.schedule(
            1.0 + i, api.send, pub,
            AttributeVector.builder()
            .actual(Key.CONFIDENCE, confidence)
            .actual(Key.SEQUENCE, i)
            .build(),
        )


class TestQueryProxy:
    @pytest.mark.parametrize(
        "node_class", [DiffusionNode, DeclarativeRoutingNode],
        ids=["diffusion", "declarative"],
    )
    def test_query_returns_matching_rows(self, node_class):
        sim, apis = build_net(node_class)
        proxy = QueryProxy(apis[0])
        handle = proxy.submit(
            "SELECT audio WHERE x BETWEEN 0 AND 50 AND confidence > 0.5"
        )
        run_sensor(sim, apis[2], x=25.0, confidence=0.9)
        sim.run(until=10.0)
        assert handle.row_count == 4
        row = handle.results[0]
        assert row["x"] == 25.0
        assert row["confidence"] == 0.9
        assert row["type"] == "audio"

    def test_non_matching_data_excluded(self):
        sim, apis = build_net(DiffusionNode)
        proxy = QueryProxy(apis[0])
        handle = proxy.submit("SELECT audio WHERE x BETWEEN 0 AND 10")
        run_sensor(sim, apis[2], x=25.0, confidence=0.9)  # outside region
        sim.run(until=10.0)
        assert handle.row_count == 0

    def test_for_duration_expires_query(self):
        sim, apis = build_net(DiffusionNode)
        proxy = QueryProxy(apis[0])
        handle = proxy.submit("SELECT audio FOR 5s")
        run_sensor(sim, apis[2], x=1.0, confidence=0.5, count=10)
        sim.run(until=30.0)
        assert handle.stopped
        # Rows stop accumulating once the query expires.
        assert all(r.time <= 5.5 for r in handle.results)

    def test_stop_is_idempotent(self):
        sim, apis = build_net(DiffusionNode)
        proxy = QueryProxy(apis[0])
        handle = proxy.submit("SELECT audio")
        proxy.stop(handle)
        proxy.stop(handle)
        assert handle.stopped

    def test_on_result_callback(self):
        sim, apis = build_net(DiffusionNode)
        proxy = QueryProxy(apis[0])
        seen = []
        proxy.submit("SELECT audio", on_result=seen.append)
        run_sensor(sim, apis[2], x=1.0, confidence=0.5, count=2)
        sim.run(until=10.0)
        assert len(seen) == 2
        assert seen[0]["sequence"] == 0

    def test_multiple_concurrent_queries(self):
        sim, apis = build_net(DiffusionNode)
        proxy = QueryProxy(apis[0])
        wide = proxy.submit("SELECT audio")
        narrow = proxy.submit("SELECT audio WHERE confidence > 0.95")
        run_sensor(sim, apis[2], x=1.0, confidence=0.5, count=3)
        sim.run(until=10.0)
        assert wide.row_count == 3
        assert narrow.row_count == 0
        assert len(proxy.queries) == 2
