"""Tests for in-network block caching (hop-by-hop repair)."""

import pytest

from repro.core import DiffusionConfig
from repro.testbed.scenarios import ideal_line
from repro.transfer import (
    BlockCacheFilter,
    BlockReceiver,
    BlockSender,
    split_object,
)


def fast_config():
    return DiffusionConfig(
        interest_interval=10.0,
        gradient_timeout=30.0,
        interest_jitter=0.1,
        reinforcement_jitter=0.05,
    )


def make_cached_transfer(data, hops=3, loss=0.0, cache_nodes=(1, 2), **recv_kwargs):
    sim, net, nodes, apis = ideal_line(hops, config=fast_config(), loss=loss, seed=11)
    caches = {i: BlockCacheFilter(nodes[i]) for i in cache_nodes}
    done = []
    receiver = BlockReceiver(
        apis[0], "obj-1",
        on_complete=lambda p, s: done.append((p, s)),
        quiet_timeout=recv_kwargs.pop("quiet_timeout", 3.0),
        **recv_kwargs,
    )
    sender = BlockSender(apis[hops], block_interval=0.2)
    sim.schedule(1.0, sender.offer, split_object("obj-1", data), 0.0)
    return sim, net, nodes, sender, receiver, caches, done


class TestCachePopulation:
    def test_blocks_cached_as_they_pass(self):
        data = bytes(500)
        sim, net, nodes, sender, receiver, caches, done = make_cached_transfer(data)
        sim.run(until=60.0)
        assert done
        obj = split_object("x", data)
        for cache in caches.values():
            assert cache.cached_blocks("obj-1") == list(range(obj.block_count))

    def test_capacity_bounded_lru(self):
        data = bytes(64 * 20)  # 20 blocks
        sim2, net2, nodes2, sender2, receiver2, caches2, done2 = (
            make_cached_transfer(data, cache_nodes=())
        )
        cache = BlockCacheFilter(nodes2[1], capacity=4)
        sim2.run(until=60.0)
        assert len(cache) <= 4
        # LRU keeps the most recent blocks.
        kept = cache.cached_blocks("obj-1")
        assert kept == sorted(kept)
        assert kept[-1] == split_object("x", data).block_count - 1

    def test_invalid_capacity(self):
        sim, net, nodes, apis = ideal_line(1, config=fast_config())
        with pytest.raises(ValueError):
            BlockCacheFilter(nodes[0], capacity=0)


class TestLocalRepair:
    def test_repair_served_from_cache_not_sender(self):
        data = bytes(i % 256 for i in range(640))  # 10 blocks
        sim, net, nodes, sender, receiver, caches, done = make_cached_transfer(data)
        # Sever the receiver's link mid-stream, then restore: blocks are
        # lost at the last hop but cached at node 1.
        sim.schedule(2.3, net.disconnect, 1, 0)
        sim.schedule(4.5, net.connect, 1, 0)
        sim.run(until=120.0)
        assert done, f"missing {receiver.missing_blocks()}"
        assert done[0][0] == data
        cache1 = caches[1]
        assert cache1.repairs_served_locally >= 1
        # The sender never saw those repair requests.
        assert sender.repairs_served == 0 or (
            cache1.requests_absorbed + cache1.requests_trimmed >= 1
        )

    def test_request_trimmed_when_cache_partial(self):
        data = bytes(640)  # 10 blocks
        sim, net, nodes, sender, receiver, caches, done = (
            make_cached_transfer(data, cache_nodes=())
        )
        cache = BlockCacheFilter(nodes[1], capacity=3)  # holds only a few
        sim.schedule(2.3, net.disconnect, 1, 0)
        sim.schedule(4.5, net.connect, 1, 0)
        sim.run(until=180.0)
        assert done
        # With only 3 cached blocks, some requests were trimmed and the
        # remainder answered by the sender.
        assert cache.requests_trimmed + cache.requests_absorbed >= 1

    def test_status_probes_pass_through_to_sender(self):
        # Receiver that heard nothing sends empty probes; caches must
        # not absorb them.
        data = bytes(200)
        sim, net, nodes, sender, receiver, caches, done = make_cached_transfer(
            data, quiet_timeout=2.0
        )
        # Cut the stream off entirely before it starts; probe must reach
        # the sender once the link heals.
        net.disconnect(2, 3)
        sim.schedule(10.0, net.connect, 2, 3)
        sim.run(until=120.0)
        assert done
        assert done[0][0] == data


class TestEndToEndWithLoss:
    def test_caching_reduces_sender_repairs(self):
        data = bytes(i % 256 for i in range(1280))  # 20 blocks

        def run(with_caches):
            sim, net, nodes, sender, receiver, caches, done = (
                make_cached_transfer(
                    data,
                    loss=0.12,
                    cache_nodes=(1, 2) if with_caches else (),
                    max_repair_rounds=30,
                )
            )
            sim.run(until=900.0)
            return sender.repairs_served, bool(done)

        cached_repairs, cached_done = run(True)
        plain_repairs, plain_done = run(False)
        assert cached_done
        assert cached_repairs <= plain_repairs
