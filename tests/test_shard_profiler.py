"""Tests for the shard-sync profiler and flight recorder.

The profiler opens up the PR-6 sharded kernel: every window is
attributed to the promise term that bound its horizon, per-shard window
sizes become distributions, barrier stall and exchange volume are
measured, and cross-shard metrics merge into the parent registry.  The
flight recorder keeps the last trace events per node for postmortems.
Everything here is read-only instrumentation, so the closing test holds
a telemetry-enabled sharded run bit-identical to the oracle.
"""

import json
import math

import pytest

from repro.shard import (
    ShardPlan,
    ShardRuntime,
    ShardStats,
    next_horizon,
    next_horizon_ex,
    run_oracle,
    run_sharded,
    sync_profile,
)
from repro.shard.worker import ExportedTx
from repro.sim import FlightRecorder, TraceBus, use_registry
from repro.sim.trace import TraceRecord

FLOOD_PLAN = ShardPlan(
    scenario="flood", params={"columns": 8, "rows": 4},
    seed=11, duration=5.0, shards=2,
)


def export(src=0, start=1.0, end=1.01):
    return ExportedTx(
        src=src, start=start, end=end, nbytes=27,
        payload=b"x", link_dst=None,
    )


# ---------------------------------------------------------------------------
# Promise / horizon term attribution


class TestPromiseTerms:
    def test_promise_ex_matches_promise(self):
        rt = ShardRuntime(FLOOD_PLAN, rank=0)
        value, term = rt.promise_ex()
        assert value == rt.promise()
        assert term in ("attempt", "move", "lookahead")

    def test_empty_queue_is_idle(self):
        rt = ShardRuntime(FLOOD_PLAN, rank=0)
        for event in list(rt.sim.pending_events()):
            event.cancel()
        rt._move_events.clear()
        assert rt.promise_ex() == (math.inf, "idle")

    def test_move_term_attributed(self):
        plan = ShardPlan(
            scenario="mobility", params={"columns": 8, "rows": 4},
            seed=11, duration=8.0, shards=2,
        )
        rt = ShardRuntime(plan, rank=0)
        # Strip everything but the move barriers: the promise must then
        # be the first move, attributed as such.
        for event in list(rt.sim.pending_events()):
            if event.name != "shard.move":
                event.cancel()
        value, term = rt.promise_ex()
        assert term == "move"
        assert value == rt._move_events[0].time

    def test_next_horizon_ex_duration_term(self):
        assert next_horizon_ex([], [], 0.002, 10.0) == (10.0, "duration")

    def test_next_horizon_ex_propagates_peer_term(self):
        horizon, term = next_horizon_ex(
            [(3.0, "attempt"), (7.0, "move")], [], 0.002, 10.0
        )
        assert (horizon, term) == (3.0, "attempt")

    def test_next_horizon_ex_export_term(self):
        horizon, term = next_horizon_ex(
            [(5.0, "attempt")], [export(end=2.0)], 0.002, 10.0
        )
        assert horizon == pytest.approx(2.002)
        assert term == "export"

    def test_next_horizon_wrapper_agrees(self):
        pairs = [(3.0, "attempt"), (7.0, "move")]
        exports = [export(end=2.0)]
        assert next_horizon(
            [p for p, _t in pairs], exports, 0.002, 10.0
        ) == next_horizon_ex(pairs, exports, 0.002, 10.0)[0]


# ---------------------------------------------------------------------------
# ShardStats and the merged profile


class TestShardStats:
    def test_as_dict_round_trips(self):
        stats = ShardStats(rank=1, owned=20)
        stats.rounds = 3
        stats.stall_seconds = 0.5
        stats.exchange_bytes = 1024
        stats.windows_by_term = {"attempt": 2, "duration": 1}
        data = stats.as_dict()
        # JSON round trip preserves every field...
        reloaded = json.loads(json.dumps(data))
        assert reloaded == data
        # ...and rebuilding from the dict reproduces the object.
        assert ShardStats(**reloaded) == stats
        # The dict is a copy: mutating it cannot reach the live stats.
        data["windows_by_term"]["attempt"] = 99
        assert stats.windows_by_term["attempt"] == 2

    def test_sync_profile_folds_terms_and_imbalance(self):
        profile = sync_profile([
            {"windows_by_term": {"attempt": 3, "export": 1},
             "busy_seconds": 1.0, "stall_seconds": 0.1,
             "exchange_bytes": 100},
            {"windows_by_term": {"attempt": 2},
             "busy_seconds": 3.0, "stall_seconds": 0.3,
             "exchange_bytes": 50},
        ])
        assert profile["windows"] == 6
        assert profile["windows_by_term"] == {"attempt": 5, "export": 1}
        assert profile["stall_seconds"] == [0.1, 0.3]
        assert profile["exchange_bytes"] == 150
        assert profile["imbalance"] == pytest.approx(1.5)

    def test_sync_profile_empty(self):
        assert sync_profile([])["imbalance"] == 1.0


# ---------------------------------------------------------------------------
# End-to-end profiling through run_sharded


class TestRunShardedProfile:
    @pytest.fixture(scope="class")
    def inline_result(self):
        return run_sharded(FLOOD_PLAN, transport="inline")

    def test_attribution_covers_every_window(self, inline_result):
        for stats in inline_result["shards"]:
            assert sum(stats["windows_by_term"].values()) == stats["rounds"]
        profile = inline_result["profile"]
        assert profile["windows"] == sum(
            s["rounds"] for s in inline_result["shards"]
        )

    def test_window_histograms_match_round_counts(self, inline_result):
        for stats, snapshot in zip(
            inline_result["shards"], inline_result["metrics"]
        ):
            name = f"shard.window_span{{shard={stats['rank']}}}"
            span = snapshot["histograms"][name]
            assert span["count"] == stats["rounds"]
            assert span["p50"] is not None
            events = snapshot["histograms"][
                f"shard.window_events{{shard={stats['rank']}}}"
            ]
            assert events["count"] == stats["rounds"]
            assert events["sum"] == stats["events"]

    def test_inline_exchange_bytes_measured(self, inline_result):
        assert all(
            s["exchange_bytes"] > 0 for s in inline_result["shards"]
        )
        assert inline_result["profile"]["exchange_bytes"] == sum(
            s["exchange_bytes"] for s in inline_result["shards"]
        )

    def test_per_term_counters_in_snapshots(self, inline_result):
        for stats, snapshot in zip(
            inline_result["shards"], inline_result["metrics"]
        ):
            rank = stats["rank"]
            for term, count in stats["windows_by_term"].items():
                name = f"shard.windows{{shard={rank},term={term}}}"
                assert snapshot["counters"][name] == count

    def test_process_transport_reports_stall_and_bytes(self):
        result = run_sharded(
            FLOOD_PLAN, transport="process", timeout=120
        )
        assert result["outcome"] == run_oracle(FLOOD_PLAN)
        for stats in result["shards"]:
            assert stats["exchange_bytes"] > 0
            assert stats["stall_seconds"] >= 0.0
            assert sum(stats["windows_by_term"].values()) == stats["rounds"]

    def test_worker_metrics_merge_into_parent_registry(self):
        with use_registry() as registry:
            run_sharded(FLOOD_PLAN, transport="process", timeout=120)
        snap = registry.snapshot()
        # Per-shard labeled instruments from inside the workers arrived.
        assert snap["counters"]["shard.rounds{shard=0}"] > 0
        assert snap["counters"]["shard.rounds{shard=1}"] > 0
        assert (
            snap["histograms"]["shard.window_span{shard=0}"]["count"] > 0
        )

    def test_telemetry_enabled_run_stays_bit_identical(self):
        """The acceptance criterion: instrumentation must not perturb
        outcomes.  A sharded run under an active registry equals the
        oracle and an unregistered sharded run, bit for bit."""
        bare = run_sharded(FLOOD_PLAN, transport="inline")
        with use_registry():
            telemetered = run_sharded(FLOOD_PLAN, transport="inline")
        oracle = run_oracle(FLOOD_PLAN)
        assert telemetered["outcome"] == oracle
        assert telemetered["outcome"] == bare["outcome"]


# ---------------------------------------------------------------------------
# FlightRecorder


class TestFlightRecorder:
    def record(self, bus, t, cat, node, **data):
        bus.emit(t, cat, node, **data)

    def test_rings_are_bounded_per_node(self):
        bus = TraceBus()
        recorder = FlightRecorder(bus, per_node_capacity=4)
        for i in range(10):
            self.record(bus, float(i), "x", 1, i=i)
            self.record(bus, float(i), "x", 2, i=i)
        assert recorder.records_seen == 20
        assert recorder.retained == 8
        kept = [r.data["i"] for r in recorder.snapshot() if r.node == 1]
        assert kept == [6, 7, 8, 9]

    def test_snapshot_preserves_arrival_order(self):
        bus = TraceBus()
        recorder = FlightRecorder(bus, per_node_capacity=8)
        self.record(bus, 1.0, "a", 2)
        self.record(bus, 1.0, "b", 1)
        self.record(bus, 1.0, "c", None)
        assert [r.category for r in recorder.snapshot()] == ["a", "b", "c"]

    def test_dump_is_loadable_with_header(self, tmp_path):
        from repro.analysis.tracelog import load_trace, summarize_trace

        bus = TraceBus()
        recorder = FlightRecorder(bus, per_node_capacity=16)
        for i in range(5):
            self.record(bus, float(i), "demo.tx", i % 2, payload=b"\x01")
        path = tmp_path / "dump.jsonl"
        written = recorder.dump(path, reason="test", extra="context")
        assert written == 5
        records = load_trace(path)
        assert records[0].category == "flight.header"
        assert records[0].data["reason"] == "test"
        assert records[0].data["extra"] == "context"
        assert records[0].data["records"] == 5
        assert len(records) == 6
        assert summarize_trace(records).by_category["demo.tx"] == 5

    def test_detach_stops_recording(self):
        bus = TraceBus()
        recorder = FlightRecorder(bus)
        self.record(bus, 1.0, "x", 0)
        recorder.detach()
        self.record(bus, 2.0, "x", 0)
        assert recorder.records_seen == 1
        assert not recorder.attached

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(TraceBus(), per_node_capacity=0)

    def test_record_dataclass_untouched(self):
        # The recorder stores the TraceRecord instances themselves.
        bus = TraceBus()
        recorder = FlightRecorder(bus)
        self.record(bus, 1.5, "y", 3, k="v")
        (record,) = recorder.snapshot()
        assert record == TraceRecord(
            time=1.5, category="y", node=3, data={"k": "v"}
        )
