"""Forwarding policies: hash stability, region geometry, suppression."""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.hierarchy.hashing import (
    RegionMap,
    point_segment_distance,
    splitmix64,
    stable_hash64,
)
from repro.hierarchy.policy import ForwardPolicy
from repro.shard import ShardPlan, run_oracle

SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")


class TestStableHashing:
    def test_splitmix64_golden_vector(self):
        # First output of the reference splitmix64 stream seeded with 0.
        assert splitmix64(0) == 0xE220A8397B1DCDAF

    def test_type_tags_keep_values_apart(self):
        assert stable_hash64(1) != stable_hash64("1")
        assert stable_hash64(True) != stable_hash64(1)
        assert stable_hash64(b"x") != stable_hash64("x")

    def test_seed_moves_the_hash(self):
        assert stable_hash64("vibration", seed=0) != stable_hash64(
            "vibration", seed=1
        )

    def test_unhashable_types_are_rejected(self):
        with pytest.raises(TypeError):
            stable_hash64(object())

    def test_independent_of_pythonhashseed(self):
        # hash(str) is salted per process; every shard worker must agree
        # on where a rendezvous value lives regardless.
        code = (
            "from repro.hierarchy.hashing import stable_hash64;"
            "print(stable_hash64('vibration'), stable_hash64(42))"
        )
        outputs = set()
        for hashseed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hashseed)
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            outputs.add(proc.stdout.strip())
        assert outputs == {f"{stable_hash64('vibration')} {stable_hash64(42)}"}


class TestRegionMap:
    def test_value_region_is_in_range_and_stable(self):
        region_map = RegionMap(0, 0, 100, 100, regions=4)
        region = region_map.region_of_value("temp")
        assert 0 <= region < 16
        assert region_map.region_of_value("temp") == region

    def test_salt_relocates_values(self):
        plain = RegionMap(0, 0, 100, 100, regions=8, salt=0)
        salted = RegionMap(0, 0, 100, 100, regions=8, salt=99)
        values = [f"v{i}" for i in range(32)]
        assert [plain.region_of_value(v) for v in values] != [
            salted.region_of_value(v) for v in values
        ]

    def test_region_centers_round_trip(self):
        region_map = RegionMap(0, 0, 100, 100, regions=4)
        for region in range(16):
            cx, cy = region_map.center(region)
            assert region_map.region_of_point(cx, cy) == region
            assert region_map.contains(region, cx, cy)

    def test_boundary_points_clamp_into_the_grid(self):
        region_map = RegionMap(0, 0, 100, 100, regions=4)
        assert region_map.region_of_point(0, 0) == 0
        assert region_map.region_of_point(100, 100) == 15
        assert region_map.region_of_point(250, 250) == 15

    def test_degenerate_extent_is_well_defined(self):
        region_map = RegionMap(5, 5, 5, 5, regions=3)
        assert region_map.region_of_point(5, 5) == 0

    def test_rejects_zero_regions(self):
        with pytest.raises(ValueError):
            RegionMap(0, 0, 1, 1, regions=0)


class TestCorridorGeometry:
    def test_point_on_segment(self):
        assert point_segment_distance(5, 0, 0, 0, 10, 0) == 0.0

    def test_perpendicular_distance(self):
        assert point_segment_distance(5, 3, 0, 0, 10, 0) == pytest.approx(3.0)

    def test_clamps_to_endpoints(self):
        assert point_segment_distance(13, 4, 0, 0, 10, 0) == pytest.approx(5.0)
        assert point_segment_distance(-3, -4, 0, 0, 10, 0) == pytest.approx(5.0)

    def test_degenerate_segment(self):
        assert point_segment_distance(3, 4, 7, 7, 7, 7) == pytest.approx(5.0)


class TestFlatDefaults:
    def test_base_policy_reproduces_legacy_decisions(self):
        policy = ForwardPolicy()
        assert policy.forward_interest(None, None) is True
        assert policy.forward_exploratory(None, None, True) is True
        assert policy.forward_exploratory(None, None, False) is False
        assert policy.forward_unmatched_exploratory(None, None) is False
        assert policy.reinforcement_implies_demand is False


def _oracle(mode, hierarchy=None):
    params = {
        "columns": 8,
        "rows": 8,
        "spacing": 15.0,
        "region": 4,
        "duration": 30.0,
        "send_interval": 2.0,
        "mode": mode,
        "vectorized": True,
        "hierarchy": hierarchy or {},
    }
    plan = ShardPlan(
        scenario="hierarchy", params=params, seed=11,
        duration=30.0, shards=1,
    )
    return run_oracle(plan)


class TestSuppression:
    def test_clustered_cuts_interest_traffic_and_still_delivers(self):
        flat = _oracle("flat")
        clustered = _oracle(
            "clustered",
            {
                "announce_interval": 8.0,
                "announce_jitter": 1.0,
                "refresh_damping": 12.0,
            },
        )
        assert (
            clustered["messages_by_class"]["interest"]
            < flat["messages_by_class"]["interest"]
        )
        assert clustered["hierarchy"]["suppressed_interests"] > 0
        assert clustered["app_delivered"] > 0

    def test_rendezvous_cuts_interest_traffic_and_still_delivers(self):
        flat = _oracle("flat")
        rendezvous = _oracle("rendezvous", {"regions": 4})
        assert (
            rendezvous["messages_by_class"]["interest"]
            < flat["messages_by_class"]["interest"]
        )
        assert rendezvous["hierarchy"]["suppressed_interests"] > 0
        assert rendezvous["app_delivered"] > 0
