"""Edge-case tests for DiffusionNode: pipeline semantics, config
switches, API misuse, and state cleanup."""

import pytest

from repro.core import (
    DiffusionConfig,
    DiffusionNode,
    DiffusionRouting,
    MessageType,
)
from repro.core.filter_api import GRADIENT_FILTER_PRIORITY
from repro.core.messages import make_data
from repro.naming import AttributeVector
from repro.naming.keys import ClassValue, Key
from repro.sim import Simulator
from repro.testbed import IdealNetwork


def build(n=2, config=None, connect=True):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01)
    nodes, apis = {}, {}
    for i in range(n):
        nodes[i] = DiffusionNode(
            sim, i, net.add_node(i),
            config=config or DiffusionConfig(reinforcement_jitter=0.05),
        )
        apis[i] = DiffusionRouting(nodes[i])
    if connect:
        for i in range(n - 1):
            net.connect(i, i + 1)
    return sim, net, nodes, apis


def sub_attrs():
    return AttributeVector.builder().eq(Key.TYPE, "x").build()


def pub_attrs():
    return AttributeVector.builder().actual(Key.TYPE, "x").build()


def sample(seq=0):
    return AttributeVector.builder().actual(Key.SEQUENCE, seq).build()


class TestFilterPipeline:
    def test_priority_order_high_first(self):
        sim, net, nodes, apis = build(1, connect=False)
        calls = []

        def make_cb(label):
            def cb(message, handle):
                calls.append(label)
                nodes[0].send_message(message, handle)
            return cb

        apis[0].add_filter(AttributeVector(), 120, make_cb("mid"))
        apis[0].add_filter(AttributeVector(), 200, make_cb("high"))
        apis[0].add_filter(AttributeVector(), 90, make_cb("low"))
        pub = apis[0].publish(pub_attrs())
        # Subscribe locally so the send has demand.
        apis[0].subscribe(sub_attrs(), lambda a, m: None)
        apis[0].send(pub, sample())
        assert calls[:3] == ["high", "mid", "low"]

    def test_filter_not_reinvoked_for_same_message(self):
        sim, net, nodes, apis = build(1, connect=False)
        calls = []

        def cb(message, handle):
            calls.append(message.unique_id)
            nodes[0].send_message(message, handle)

        apis[0].add_filter(AttributeVector(), 150, cb)
        apis[0].subscribe(sub_attrs(), lambda a, m: None)
        pub = apis[0].publish(pub_attrs())
        apis[0].send(pub, sample())
        assert len(calls) == len(set(calls))

    def test_dropping_filter_kills_message(self):
        sim, net, nodes, apis = build(2)
        received = []
        apis[0].subscribe(sub_attrs(), lambda a, m: received.append(a))
        # A filter at node 1 that swallows everything above the core.
        nodes[1].add_filter(AttributeVector(), 150, lambda m, h: None)
        pub = apis[1].publish(pub_attrs())
        sim.schedule(1.0, apis[1].send, pub, sample())
        sim.run(until=5.0)
        assert received == []

    def test_send_message_to_next_bypasses_lower_filters(self):
        sim, net, nodes, apis = build(2)
        seen_by_core = []
        original = nodes[1]._gradient_filter_callback

        def spy(message, handle):
            seen_by_core.append(message.msg_type)
            original(message, handle)

        nodes[1]._gradient_filter.callback = spy

        def passthrough(message, handle):
            if message.msg_type.is_data:
                # Straight to the radio: the gradient core at THIS node
                # never routes it.
                nodes[1].send_message_to_next(
                    message.forwarded_copy(None), handle
                )
            else:
                nodes[1].send_message(message, handle)

        nodes[1].add_filter(AttributeVector(), 150, passthrough)
        received = []
        apis[0].subscribe(sub_attrs(), lambda a, m: received.append(a))
        pub = apis[1].publish(pub_attrs())
        sim.schedule(1.0, apis[1].send, pub, sample())
        sim.run(until=5.0)
        assert MessageType.EXPLORATORY_DATA not in seen_by_core
        assert len(received) == 1  # still delivered: radio forward worked

    def test_reserved_priority_rejected(self):
        sim, net, nodes, apis = build(1, connect=False)
        with pytest.raises(ValueError):
            apis[0].add_filter(
                AttributeVector(), GRADIENT_FILTER_PRIORITY, lambda m, h: None
            )

    def test_remove_unknown_filter_returns_false(self):
        sim, net, nodes, apis = build(1, connect=False)
        handle = apis[0].add_filter(AttributeVector(), 150, lambda m, h: None)
        assert apis[0].remove_filter(handle)
        assert not apis[0].remove_filter(handle)

    def test_core_filter_cannot_be_removed(self):
        sim, net, nodes, apis = build(1, connect=False)
        core_handle = nodes[0]._gradient_filter.handle
        assert not nodes[0].remove_filter(core_handle)
        assert len(nodes[0]._filters) == 1


class TestConfigSwitches:
    def test_duplicate_suppression_off_floods_forever_protection(self):
        """Without the dedup cache, a ring re-floods messages; the test
        verifies the switch exists and the message still delivers (the
        IdealNetwork delay bounds each cycle; we stop the sim early)."""
        config = DiffusionConfig(
            enable_duplicate_suppression=False, reinforcement_jitter=0.05
        )
        sim, net, nodes, apis = build(2, config=config)
        received = []
        apis[0].subscribe(sub_attrs(), lambda a, m: received.append(a))
        pub = apis[1].publish(pub_attrs())
        sim.schedule(1.0, apis[1].send, pub, sample())
        sim.run(until=2.0, max_events=5000)
        assert len(received) >= 1

    def test_negative_reinforcement_disabled(self):
        config = DiffusionConfig(
            enable_negative_reinforcement=False, reinforcement_jitter=0.05
        )
        sim, net, nodes, apis = build(3, config=config)
        apis[0].subscribe(sub_attrs(), lambda a, m: None)
        pub = apis[2].publish(pub_attrs())
        for i in range(5):
            sim.schedule(1.0 + i, apis[2].send, pub, sample(i))
        sim.run(until=20.0)
        total_neg = sum(
            n.stats.messages_by_type[MessageType.NEGATIVE_REINFORCEMENT]
            for n in nodes.values()
        )
        assert total_neg == 0

    def test_count_based_exploratory_override(self):
        config = DiffusionConfig(
            exploratory_every=2, reinforcement_jitter=0.05
        )
        sim, net, nodes, apis = build(2, config=config)
        apis[0].subscribe(sub_attrs(), lambda a, m: None)
        pub = apis[1].publish(pub_attrs())
        for i in range(6):
            sim.schedule(1.0 + i, apis[1].send, pub, sample(i))
        sim.run(until=20.0)
        stats = nodes[1].stats
        assert stats.messages_by_type[MessageType.EXPLORATORY_DATA] == 3
        assert stats.messages_by_type[MessageType.DATA] == 3


class TestApiEdges:
    def test_unsubscribe_unknown_handle(self):
        sim, net, nodes, apis = build(1, connect=False)
        from repro.core.api import SubscriptionHandle

        assert not apis[0].unsubscribe(
            SubscriptionHandle(handle_id=424242, node_id=0)
        )

    def test_unpublish_stops_sends(self):
        sim, net, nodes, apis = build(2)
        received = []
        apis[0].subscribe(sub_attrs(), lambda a, m: received.append(a))
        pub = apis[1].publish(pub_attrs())
        assert apis[1].unpublish(pub)
        sim.schedule(1.0, apis[1].send, pub, sample())
        sim.run(until=5.0)
        assert received == []
        assert not apis[1].unpublish(pub)

    def test_two_subscriptions_same_attrs_both_fire(self):
        sim, net, nodes, apis = build(2)
        a_hits, b_hits = [], []
        apis[0].subscribe(sub_attrs(), lambda a, m: a_hits.append(a))
        apis[0].subscribe(sub_attrs(), lambda a, m: b_hits.append(a))
        pub = apis[1].publish(pub_attrs())
        sim.schedule(1.0, apis[1].send, pub, sample())
        sim.run(until=5.0)
        assert len(a_hits) == 1
        assert len(b_hits) == 1

    def test_unsubscribe_one_of_two_keeps_entry_alive(self):
        sim, net, nodes, apis = build(2)
        keep_hits = []
        drop = apis[0].subscribe(sub_attrs(), lambda a, m: None)
        apis[0].subscribe(sub_attrs(), lambda a, m: keep_hits.append(a))
        apis[0].unsubscribe(drop)
        pub = apis[1].publish(pub_attrs())
        sim.schedule(1.0, apis[1].send, pub, sample())
        sim.run(until=5.0)
        assert len(keep_hits) == 1
        entry = nodes[0].gradients.entry_for(sub_attrs())
        assert entry.local_sink

    def test_shutdown_cancels_all_timers(self):
        sim, net, nodes, apis = build(2)
        apis[0].subscribe(sub_attrs(), lambda a, m: None)
        sim.run(until=1.0)
        nodes[0].shutdown()
        nodes[1].shutdown()
        before = sim.pending
        sim.run(until=500.0)
        # No periodic timers left: nothing new fired.
        assert sim.events_processed < 10_000

    def test_padding_bytes_accounted(self):
        sim, net, nodes, apis = build(2)
        sizes = []
        nodes[1].trace.subscribe(
            "diffusion.tx", lambda r: sizes.append(r.data["nbytes"])
        )
        apis[0].subscribe(sub_attrs(), lambda a, m: None)
        pub = apis[1].publish(pub_attrs())
        sim.schedule(1.0, apis[1].send, pub, sample(), 500)
        sim.run(until=5.0)
        data_sizes = [s for s in sizes if s > 400]
        assert data_sizes  # the padded message went out at padded size
