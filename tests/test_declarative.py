"""Tests for the MIT-LL declarative routing implementation.

The headline property is the paper's portability claim: "In principle
all applications that do not depend on filters will run over either
implementation" — enforced by running identical application code over
DiffusionNode and DeclarativeRoutingNode.
"""

import pytest

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.declarative import DeclarativeRoutingNode, UnsupportedFeatureError
from repro.energy import EnergyLedger
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio import Topology
from repro.sim import Simulator
from repro.testbed import IdealNetwork


def build_line(node_class, n=4, **node_kwargs):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01)
    nodes, apis = {}, {}
    config = DiffusionConfig(reinforcement_jitter=0.05)
    for i in range(n):
        transport = net.add_node(i)
        nodes[i] = node_class(sim, i, transport, config=config, **node_kwargs)
        apis[i] = DiffusionRouting(nodes[i])
    for i in range(n - 1):
        net.connect(i, i + 1)
    return sim, net, nodes, apis


def tracking_application(sim, apis, sink_id, source_id):
    """A filter-free application, deployable on either implementation."""
    received = []
    sub = (
        AttributeVector.builder()
        .eq(Key.TYPE, "track")
        .actual(Key.INTERVAL, 1000)
        .build()
    )
    apis[sink_id].subscribe(sub, lambda attrs, msg: received.append(attrs))
    pub = apis[source_id].publish(
        AttributeVector.builder().actual(Key.TYPE, "track").build()
    )
    for i in range(5):
        sim.schedule(
            1.0 + i, apis[source_id].send, pub,
            AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
        )
    return received


class TestPortability:
    @pytest.mark.parametrize(
        "node_class", [DiffusionNode, DeclarativeRoutingNode],
        ids=["diffusion", "declarative"],
    )
    def test_same_application_runs_on_both(self, node_class):
        sim, net, nodes, apis = build_line(node_class)
        received = tracking_application(sim, apis, sink_id=0, source_id=3)
        sim.run(until=15.0)
        assert len(received) == 5
        assert [a.value_of(Key.SEQUENCE) for a in received] == list(range(5))

    def test_mixed_network_interoperates(self):
        """The wire behaviour is compatible: nodes of both kinds relay
        for each other (the paper gateways at the app level; our two
        implementations share message formats outright)."""
        sim = Simulator()
        net = IdealNetwork(sim, delay=0.01)
        config = DiffusionConfig(reinforcement_jitter=0.05)
        classes = [DiffusionNode, DeclarativeRoutingNode,
                   DiffusionNode, DeclarativeRoutingNode]
        nodes, apis = {}, {}
        for i, cls in enumerate(classes):
            nodes[i] = cls(sim, i, net.add_node(i), config=config)
            apis[i] = DiffusionRouting(nodes[i])
        for i in range(3):
            net.connect(i, i + 1)
        received = tracking_application(sim, apis, sink_id=0, source_id=3)
        sim.run(until=15.0)
        assert len(received) == 5


class TestNoFilters:
    def test_add_filter_raises(self):
        sim, net, nodes, apis = build_line(DeclarativeRoutingNode, n=1)
        with pytest.raises(UnsupportedFeatureError):
            apis[0].add_filter(AttributeVector(), 100, lambda m, h: None)

    def test_suppression_filter_cannot_deploy(self):
        from repro.filters import SuppressionFilter

        sim, net, nodes, apis = build_line(DeclarativeRoutingNode, n=1)
        with pytest.raises(UnsupportedFeatureError):
            SuppressionFilter(nodes[0])


class TestGeographyAidedRouting:
    def test_interest_pruned_away_from_region(self):
        topo = Topology()
        for i, (x, y) in enumerate([(0, 0), (10, 0), (-10, 0), (-20, 0)]):
            topo.add_node(i, float(x), float(y))
        sim = Simulator()
        net = IdealNetwork(sim, delay=0.01)
        config = DiffusionConfig(reinforcement_jitter=0.05)
        nodes, apis = {}, {}
        for i in range(4):
            nodes[i] = DeclarativeRoutingNode(
                sim, i, net.add_node(i), config=config,
                topology=topo, gear_slack=2.0,
            )
            apis[i] = DiffusionRouting(nodes[i])
        for a, b in [(0, 1), (0, 2), (2, 3)]:
            net.connect(a, b)
        region_sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, "det")
            .ge(Key.X_COORD, 25.0).le(Key.X_COORD, 35.0)
            .ge(Key.Y_COORD, -5.0).le(Key.Y_COORD, 5.0)
            .build()
        )
        apis[0].subscribe(region_sub, lambda a, m: None)
        sim.run(until=2.0)
        assert nodes[2].interests_pruned_geo >= 1
        assert len(nodes[3].gradients) == 0
        assert len(nodes[1].gradients) == 1  # toward the region: kept

    def test_non_geographic_interest_not_pruned(self):
        topo = Topology()
        for i in range(3):
            topo.add_node(i, i * 10.0, 0.0)
        sim = Simulator()
        net = IdealNetwork(sim, delay=0.01)
        nodes, apis = {}, {}
        for i in range(3):
            nodes[i] = DeclarativeRoutingNode(
                sim, i, net.add_node(i),
                config=DiffusionConfig(reinforcement_jitter=0.05),
                topology=topo,
            )
            apis[i] = DiffusionRouting(nodes[i])
        net.connect(0, 1)
        net.connect(1, 2)
        apis[0].subscribe(
            AttributeVector.builder().eq(Key.TYPE, "x").build(),
            lambda a, m: None,
        )
        sim.run(until=2.0)
        assert all(n.interests_pruned_geo == 0 for n in nodes.values())
        assert len(nodes[2].gradients) == 1


class TestEnergyAwareRouting:
    def test_energy_poor_relay_abstains(self):
        # Diamond 0-{1,2}-3; relay 1 is nearly drained.
        sim = Simulator()
        net = IdealNetwork(sim, delay=0.01)
        config = DiffusionConfig(reinforcement_jitter=0.05)
        drained = EnergyLedger()
        drained.record_send(95.0)  # ~95% of a 200-unit budget at t->0
        ledgers = {1: (drained, 200.0)}
        nodes, apis = {}, {}
        for i in range(4):
            ledger, budget = ledgers.get(i, (None, 0.0))
            nodes[i] = DeclarativeRoutingNode(
                sim, i, net.add_node(i), config=config,
                energy_ledger=ledger, energy_budget=budget,
                min_energy_fraction=0.2,
            )
            apis[i] = DiffusionRouting(nodes[i])
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            net.connect(a, b)
        received = tracking_application(sim, apis, sink_id=0, source_id=3)
        sim.run(until=15.0)
        # The drained relay declined to forward interests...
        assert nodes[1].interests_declined_energy >= 1
        # ...so data flows via relay 2, and nothing routes through 1.
        assert len(received) == 5
        from repro.core import MessageType

        assert nodes[1].stats.messages_by_type[MessageType.DATA] == 0
        assert (
            nodes[2].stats.messages_by_type[MessageType.DATA]
            + nodes[2].stats.messages_by_type[MessageType.EXPLORATORY_DATA]
            >= 5
        )

    def test_healthy_node_relays_normally(self):
        healthy = EnergyLedger()
        sim, net, nodes, apis = build_line(
            DeclarativeRoutingNode, n=3,
            energy_ledger=healthy, energy_budget=1000.0,
        )
        received = tracking_application(sim, apis, sink_id=0, source_id=2)
        sim.run(until=15.0)
        assert len(received) == 5
        assert all(n.interests_declined_energy == 0 for n in nodes.values())
