"""Tests for the online invariant monitors."""

import pytest

from repro import AttributeVector, Key
from repro.core import DiffusionConfig
from repro.faults import InvariantViolationError, MonitorSuite
from repro.radio import Topology
from repro.testbed import SensorNetwork


def small_network(**config_overrides):
    base = dict(
        interest_interval=10.0,
        interest_jitter=0.5,
        gradient_timeout=25.0,
        exploratory_interval=8.0,
    )
    base.update(config_overrides)
    topo = Topology()
    for i in range(3):
        topo.add_node(i, i * 12.0, 0.0)
    return SensorNetwork(topo, seed=3, config=DiffusionConfig(**base))


def tx(net, node, trace, hops, msg_type="DATA"):
    net.trace.emit(
        net.sim.now, "diffusion.tx",
        node=node, trace=trace, hops=hops, msg_type=msg_type, next_hop=None,
        nbytes=40,
    )


class TestForwardingLoopMonitor:
    def test_same_trace_at_two_hop_counts_is_a_loop(self):
        net = small_network()
        suite = MonitorSuite(net)
        tx(net, 1, "9.1", hops=2)
        tx(net, 1, "9.1", hops=5)  # came back around
        assert not suite.ok
        assert suite.violations[0].invariant == "no-forwarding-loop"
        assert suite.violations[0].trace == "9.1"
        suite.detach()

    def test_fanout_at_same_hop_count_is_not_a_loop(self):
        net = small_network()
        suite = MonitorSuite(net)
        tx(net, 1, "9.1", hops=2)
        tx(net, 1, "9.1", hops=2)  # exploratory fan-out, legitimate
        tx(net, 2, "9.1", hops=3)  # next hop, different node
        assert suite.ok
        suite.detach()

    def test_interest_transmissions_ignored(self):
        net = small_network()
        suite = MonitorSuite(net)
        tx(net, 1, "9.1", hops=1, msg_type="INTEREST")
        tx(net, 1, "9.1", hops=4, msg_type="INTEREST")
        assert suite.ok  # interest flooding legitimately re-sends
        suite.detach()

    def test_hop_count_ceiling(self):
        net = small_network()
        suite = MonitorSuite(net, max_hops=4)
        tx(net, 1, "9.1", hops=9)
        assert not suite.ok
        assert suite.violations[0].detail["max_hops"] == 4
        suite.detach()


class TestStateMonitors:
    def test_reinforcement_uniqueness_catches_duplicates(self):
        net = small_network()
        suite = MonitorSuite(net)
        entry = net.node(1).gradients.entry_for(
            AttributeVector.builder().eq(Key.TYPE, "t").build()
        )
        entry.sink_preferred[2] = [0, 0]  # duplicate next hop
        suite.check()
        assert not suite.ok
        assert suite.violations[0].invariant == "reinforcement-uniqueness"
        suite.detach()

    def test_reinforcement_uniqueness_respects_multipath_degree(self):
        net = small_network(multipath_degree=2)
        suite = MonitorSuite(net)
        entry = net.node(1).gradients.entry_for(
            AttributeVector.builder().eq(Key.TYPE, "t").build()
        )
        entry.sink_preferred[2] = [0, 2]  # two distinct: allowed at degree 2
        suite.check()
        assert suite.ok
        entry.sink_preferred[2] = [0, 2, 1]  # three: over budget
        suite.check()
        assert not suite.ok
        suite.detach()

    def test_gradient_table_bound(self):
        net = small_network()
        suite = MonitorSuite(net, max_entries=1)
        table = net.node(1).gradients
        table.entry_for(AttributeVector.builder().eq(Key.TYPE, "a").build())
        table.entry_for(AttributeVector.builder().eq(Key.TYPE, "b").build())
        suite.check()
        assert not suite.ok
        assert suite.violations[0].invariant == "gradient-bound"
        suite.detach()

    def test_periodic_probe_runs_without_traffic(self):
        net = small_network()
        suite = MonitorSuite(net, probe_interval=2.0)
        net.run(until=10.0)
        assert suite.ok  # probes ran and found a healthy network
        suite.detach()


class TestRebootCoherence:
    def test_clean_reboot_passes(self):
        net = small_network()
        suite = MonitorSuite(net)
        net.api(0).subscribe(
            AttributeVector.builder().eq(Key.TYPE, "t").build(),
            lambda attrs, msg: None,
        )
        net.run(until=15.0)
        net.fail_node(0)
        net.resurrect_node(0)  # clear_state default: a true reboot
        assert suite.ok
        suite.detach()

    def test_dirty_reboot_flagged(self):
        net = small_network()
        suite = MonitorSuite(net)
        # A "reboot" announced while the gradient table still has state
        # is incoherent — the monitor must catch it.
        net.node(1).gradients.entry_for(
            AttributeVector.builder().eq(Key.TYPE, "t").build()
        )
        net.trace.emit(net.sim.now, "node.reboot", node=1)
        assert not suite.ok
        assert suite.violations[0].invariant == "reboot-coherence"
        suite.detach()


class TestSuiteLifecycle:
    def test_assert_ok_raises_with_description(self):
        net = small_network()
        suite = MonitorSuite(net)
        tx(net, 1, "9.1", hops=2)
        tx(net, 1, "9.1", hops=5)
        with pytest.raises(InvariantViolationError, match="no-forwarding-loop"):
            suite.assert_ok()
        suite.detach()

    def test_detach_stops_listening(self):
        net = small_network()
        suite = MonitorSuite(net)
        suite.detach()
        tx(net, 1, "9.1", hops=2)
        tx(net, 1, "9.1", hops=5)
        assert suite.ok  # detached: the loop went unobserved

    def test_violations_count_on_metrics(self):
        from repro.sim.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            net = small_network()
            suite = MonitorSuite(net)
            tx(net, 1, "9.1", hops=2)
            tx(net, 1, "9.1", hops=5)
            suite.detach()
        counter = registry.counter("faults.violations")
        assert counter.value == 1
