"""Tests for the online invariant monitors."""

import pytest

from repro import AttributeVector, Key
from repro.core import DiffusionConfig
from repro.faults import InvariantViolationError, MonitorSuite
from repro.radio import Topology
from repro.testbed import SensorNetwork


def small_network(**config_overrides):
    base = dict(
        interest_interval=10.0,
        interest_jitter=0.5,
        gradient_timeout=25.0,
        exploratory_interval=8.0,
    )
    base.update(config_overrides)
    topo = Topology()
    for i in range(3):
        topo.add_node(i, i * 12.0, 0.0)
    return SensorNetwork(topo, seed=3, config=DiffusionConfig(**base))


def tx(net, node, trace, hops, msg_type="DATA"):
    net.trace.emit(
        net.sim.now, "diffusion.tx",
        node=node, trace=trace, hops=hops, msg_type=msg_type, next_hop=None,
        nbytes=40,
    )


class TestForwardingLoopMonitor:
    def test_same_trace_at_two_hop_counts_is_a_loop(self):
        net = small_network()
        suite = MonitorSuite(net)
        tx(net, 1, "9.1", hops=2)
        tx(net, 1, "9.1", hops=5)  # came back around
        assert not suite.ok
        assert suite.violations[0].invariant == "no-forwarding-loop"
        assert suite.violations[0].trace == "9.1"
        suite.detach()

    def test_fanout_at_same_hop_count_is_not_a_loop(self):
        net = small_network()
        suite = MonitorSuite(net)
        tx(net, 1, "9.1", hops=2)
        tx(net, 1, "9.1", hops=2)  # exploratory fan-out, legitimate
        tx(net, 2, "9.1", hops=3)  # next hop, different node
        assert suite.ok
        suite.detach()

    def test_interest_transmissions_ignored(self):
        net = small_network()
        suite = MonitorSuite(net)
        tx(net, 1, "9.1", hops=1, msg_type="INTEREST")
        tx(net, 1, "9.1", hops=4, msg_type="INTEREST")
        assert suite.ok  # interest flooding legitimately re-sends
        suite.detach()

    def test_hop_count_ceiling(self):
        net = small_network()
        suite = MonitorSuite(net, max_hops=4)
        tx(net, 1, "9.1", hops=9)
        assert not suite.ok
        assert suite.violations[0].detail["max_hops"] == 4
        suite.detach()


class TestStateMonitors:
    def test_reinforcement_uniqueness_catches_duplicates(self):
        net = small_network()
        suite = MonitorSuite(net)
        entry = net.node(1).gradients.entry_for(
            AttributeVector.builder().eq(Key.TYPE, "t").build()
        )
        entry.sink_preferred[2] = [0, 0]  # duplicate next hop
        suite.check()
        assert not suite.ok
        assert suite.violations[0].invariant == "reinforcement-uniqueness"
        suite.detach()

    def test_reinforcement_uniqueness_respects_multipath_degree(self):
        net = small_network(multipath_degree=2)
        suite = MonitorSuite(net)
        entry = net.node(1).gradients.entry_for(
            AttributeVector.builder().eq(Key.TYPE, "t").build()
        )
        entry.sink_preferred[2] = [0, 2]  # two distinct: allowed at degree 2
        suite.check()
        assert suite.ok
        entry.sink_preferred[2] = [0, 2, 1]  # three: over budget
        suite.check()
        assert not suite.ok
        suite.detach()

    def test_gradient_table_bound(self):
        net = small_network()
        suite = MonitorSuite(net, max_entries=1)
        table = net.node(1).gradients
        table.entry_for(AttributeVector.builder().eq(Key.TYPE, "a").build())
        table.entry_for(AttributeVector.builder().eq(Key.TYPE, "b").build())
        suite.check()
        assert not suite.ok
        assert suite.violations[0].invariant == "gradient-bound"
        suite.detach()

    def test_periodic_probe_runs_without_traffic(self):
        net = small_network()
        suite = MonitorSuite(net, probe_interval=2.0)
        net.run(until=10.0)
        assert suite.ok  # probes ran and found a healthy network
        suite.detach()


class TestRebootCoherence:
    def test_clean_reboot_passes(self):
        net = small_network()
        suite = MonitorSuite(net)
        net.api(0).subscribe(
            AttributeVector.builder().eq(Key.TYPE, "t").build(),
            lambda attrs, msg: None,
        )
        net.run(until=15.0)
        net.fail_node(0)
        net.resurrect_node(0)  # clear_state default: a true reboot
        assert suite.ok
        suite.detach()

    def test_dirty_reboot_flagged(self):
        net = small_network()
        suite = MonitorSuite(net)
        # A "reboot" announced while the gradient table still has state
        # is incoherent — the monitor must catch it.
        net.node(1).gradients.entry_for(
            AttributeVector.builder().eq(Key.TYPE, "t").build()
        )
        net.trace.emit(net.sim.now, "node.reboot", node=1)
        assert not suite.ok
        assert suite.violations[0].invariant == "reboot-coherence"
        suite.detach()


class TestSuiteLifecycle:
    def test_assert_ok_raises_with_description(self):
        net = small_network()
        suite = MonitorSuite(net)
        tx(net, 1, "9.1", hops=2)
        tx(net, 1, "9.1", hops=5)
        with pytest.raises(InvariantViolationError, match="no-forwarding-loop"):
            suite.assert_ok()
        suite.detach()

    def test_detach_stops_listening(self):
        net = small_network()
        suite = MonitorSuite(net)
        suite.detach()
        tx(net, 1, "9.1", hops=2)
        tx(net, 1, "9.1", hops=5)
        assert suite.ok  # detached: the loop went unobserved

    def test_violations_count_on_metrics(self):
        from repro.sim.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            net = small_network()
            suite = MonitorSuite(net)
            tx(net, 1, "9.1", hops=2)
            tx(net, 1, "9.1", hops=5)
            suite.detach()
        counter = registry.counter("faults.violations")
        assert counter.value == 1


class TestFlightRecorderIntegration:
    def test_first_violation_dumps_causal_leadup(self, tmp_path):
        """The postmortem contract: when an invariant breaks, the dump
        holds the trace events that causally preceded it — at least 64
        on a run with real traffic — and it is written exactly once."""
        from repro.analysis.tracelog import load_trace
        from repro.faults.scenarios import resilience_run

        path = tmp_path / "postmortem.jsonl"
        result = resilience_run(
            fault="crash", seed=3, duration=40.0,
            flight_recorder=str(path), monitor_max_entries=0,
        )
        assert not result["invariants_ok"]
        info = result["flight_recorder"]
        assert info["path"] == str(path)
        assert info["records"] >= 64
        records = load_trace(path)
        header, events = records[0], records[1:]
        assert header.category == "flight.header"
        assert header.data["reason"] == "invariant-violation"
        assert "gradient-bound" in header.data["violation"]
        assert len(events) == info["records"]
        # Every retained event precedes (or coincides with) the breach:
        # the dump happens synchronously inside the violation handler.
        violation_time = 5.0  # first probe
        assert all(r.time <= violation_time for r in events)

    def test_clean_run_dumps_at_end(self, tmp_path):
        from repro.analysis.tracelog import load_trace
        from repro.faults.scenarios import resilience_run

        path = tmp_path / "healthy.jsonl"
        result = resilience_run(
            fault="crash", seed=3, duration=40.0,
            flight_recorder=str(path),
        )
        assert result["invariants_ok"]
        records = load_trace(path)
        assert records[0].data["reason"] == "end-of-run"
        assert result["flight_recorder"]["records"] == len(records) - 1

    def test_without_recorder_result_shape_unchanged(self):
        """The faults smoke gate compares two runs for bit-identical
        equality; the flight_recorder key must not appear unless asked
        for."""
        from repro.faults.scenarios import resilience_run

        result = resilience_run(fault="crash", seed=3, duration=40.0)
        assert "flight_recorder" not in result

    def test_monitor_dump_once_per_run(self, tmp_path):
        from repro.sim.trace import FlightRecorder

        net = small_network()
        recorder = FlightRecorder(net.trace)
        path = tmp_path / "once.jsonl"
        suite = MonitorSuite(net, recorder=recorder, dump_path=path)
        tx(net, 1, "9.1", hops=2)
        tx(net, 1, "9.1", hops=5)   # violation 1: dumps
        first_dump = path.read_text()
        tx(net, 1, "9.1", hops=6)   # violation 2: must not re-dump
        assert len(suite.violations) == 2
        assert recorder.dumps == 1
        assert path.read_text() == first_dump
        suite.detach()
