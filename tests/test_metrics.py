"""Tests for the metrics registry (repro.sim.metrics)."""

from repro.sim import (
    MetricsRegistry,
    NULL_REGISTRY,
    current_registry,
    use_registry,
)
from repro.sim.metrics import _NullInstrument


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("tx")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_streams_moments(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.mean == 2.0
        assert hist.min == 1.0
        assert hist.max == 3.0

    def test_instruments_memoized_by_name_and_labels(self):
        registry = MetricsRegistry()
        assert registry.counter("drops", reason="x") is registry.counter(
            "drops", reason="x"
        )
        assert registry.counter("drops", reason="x") is not registry.counter(
            "drops", reason="y"
        )

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("m", x=1, y=2)
        b = registry.counter("m", y=2, x=1)
        assert a is b


class TestNullRegistry:
    def test_disabled_registry_hands_out_shared_noop(self):
        a = NULL_REGISTRY.counter("tx")
        b = NULL_REGISTRY.histogram("depth")
        assert isinstance(a, _NullInstrument)
        assert a is b

    def test_noop_instrument_absorbs_everything(self):
        instrument = NULL_REGISTRY.counter("x")
        instrument.inc()
        instrument.set(9)
        instrument.observe(1.0)
        assert instrument.value == 0
        assert NULL_REGISTRY.empty

    def test_registry_truthiness_tracks_enabled(self):
        assert MetricsRegistry()
        assert not NULL_REGISTRY


class TestUseRegistry:
    def test_default_is_null(self):
        assert current_registry() is NULL_REGISTRY

    def test_block_installs_and_restores(self):
        with use_registry() as registry:
            assert current_registry() is registry
            assert registry.enabled
        assert current_registry() is NULL_REGISTRY

    def test_nesting_is_a_stack(self):
        with use_registry() as outer:
            with use_registry() as inner:
                assert current_registry() is inner
            assert current_registry() is outer

    def test_explicit_registry_honoured(self):
        mine = MetricsRegistry()
        with use_registry(mine) as registry:
            assert registry is mine


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("tx").inc(2)
        registry.gauge("depth").set(4)
        registry.histogram("lat").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"tx": 2}
        assert snap["gauges"] == {"depth": 4}
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["histograms"]["lat"]["mean"] == 0.5

    def test_labels_flattened_into_names(self):
        registry = MetricsRegistry()
        registry.counter("drops", reason="queue-full").inc()
        assert "drops{reason=queue-full}" in registry.snapshot()["counters"]

    def test_empty_and_format(self):
        registry = MetricsRegistry()
        assert registry.empty
        registry.counter("tx").inc()
        assert not registry.empty
        assert "tx" in registry.format()


class TestStackIntegration:
    def test_sensor_network_populates_active_registry(self):
        from repro.naming import AttributeVector
        from repro.naming.keys import Key
        from repro.radio import Topology
        from repro.testbed import SensorNetwork

        with use_registry() as registry:
            net = SensorNetwork(Topology.line(3, spacing=15.0), seed=2)
            sub = AttributeVector.builder().eq(Key.TYPE, "m").build()
            got = []
            net.api(0).subscribe(sub, lambda a, m: got.append(m))
            pub = net.api(2).publish(
                AttributeVector.builder().actual(Key.TYPE, "m").build()
            )
            for i in range(4):
                net.sim.schedule(
                    2.0 + 2.0 * i, net.api(2).send, pub,
                    AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
                )
            net.run(until=20.0)
        snap = registry.snapshot()
        assert got, "sanity: data should reach the sink"
        assert snap["counters"]["diffusion.delivered"] == len(got)
        assert snap["counters"]["diffusion.tx.messages"] > 0
        assert snap["counters"]["channel.fragments_sent"] > 0
        assert snap["counters"]["mac.enqueued"] > 0
        assert snap["histograms"]["mac.queue_depth"]["count"] > 0

    def test_without_registry_network_records_nothing(self):
        from repro.radio import Topology
        from repro.testbed import SensorNetwork

        assert current_registry() is NULL_REGISTRY
        net = SensorNetwork(Topology.line(2, spacing=15.0), seed=2)
        net.run(until=1.0)
        assert NULL_REGISTRY.empty
