"""Tests for the metrics registry (repro.sim.metrics)."""

import pytest

from repro.sim import (
    MetricsRegistry,
    NULL_REGISTRY,
    Simulator,
    TelemetrySampler,
    TimeSeries,
    current_registry,
    use_registry,
)
from repro.sim.metrics import _NullInstrument


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("tx")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_gauge_tracks_extrema(self):
        gauge = MetricsRegistry().gauge("depth")
        assert gauge.min is None and gauge.max is None
        for v in (3, 7, 1, 5):
            gauge.set(v)
        assert gauge.value == 5
        assert gauge.min == 1
        assert gauge.max == 7

    def test_histogram_streaming_quantiles(self):
        hist = MetricsRegistry().histogram("latency")
        # A deterministic non-monotone ordering of 1..1000.
        for i in range(1000):
            hist.observe(float((i * 617) % 1000 + 1))
        assert hist.p50 == pytest.approx(500, rel=0.05)
        assert hist.p95 == pytest.approx(950, rel=0.05)
        assert hist.p99 == pytest.approx(990, rel=0.05)

    def test_quantiles_before_five_samples_use_nearest_rank(self):
        hist = MetricsRegistry().histogram("lat")
        assert hist.p50 is None
        hist.observe(10.0)
        assert hist.p50 == 10.0 and hist.p99 == 10.0
        hist.observe(20.0)
        hist.observe(30.0)
        assert hist.p50 == 20.0
        assert hist.p99 == 30.0

    def test_quantiles_are_deterministic(self):
        """Same observation sequence, same estimates — the property
        that lets telemetry stay on during equivalence runs."""
        def run():
            hist = MetricsRegistry().histogram("h")
            for i in range(200):
                hist.observe(float((i * 37) % 100))
            return (hist.p50, hist.p95, hist.p99)

        assert run() == run()


class TestTimeSeries:
    def test_records_and_returns_samples(self):
        series = TimeSeries(capacity=8)
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.samples() == [(1.0, 10.0), (2.0, 20.0)]
        assert series.last == (2.0, 20.0)
        assert series.recorded == 2

    def test_ring_is_bounded_keeping_newest(self):
        series = TimeSeries(capacity=3)
        for i in range(10):
            series.record(float(i), float(i * i))
        assert series.recorded == 10
        assert series.samples() == [(7.0, 49.0), (8.0, 64.0), (9.0, 81.0)]

    def test_extend_interleaves_by_time(self):
        series = TimeSeries(capacity=4)
        series.record(1.0, 1.0)
        series.record(3.0, 3.0)
        series.extend([(2.0, 2.0), (4.0, 4.0)])
        assert series.samples() == [
            (1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)
        ]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeries(capacity=0)

    def test_registry_memoizes_timeseries(self):
        registry = MetricsRegistry()
        assert registry.timeseries("x") is registry.timeseries("x")
        assert "x" in registry.snapshot()["timeseries"]


class TestTelemetrySampler:
    def test_samples_counters_and_gauges_on_sim_time(self):
        with use_registry() as registry:
            sim = Simulator()
            sent = registry.counter("sent")
            depth = registry.gauge("depth")
            sampler = TelemetrySampler(sim, interval=1.0).start()
            for i in range(5):
                sim.schedule(
                    i + 0.5, lambda i=i: (sent.inc(), depth.set(i))
                )
            sim.run(until=5.0)
        snap = registry.snapshot()
        assert sampler.ticks == 5
        sent_curve = snap["timeseries"]["sent"]["samples"]
        assert [t for t, _v in sent_curve] == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert [v for _t, v in sent_curve] == [1, 2, 3, 4, 5]
        assert [v for _t, v in snap["timeseries"]["depth"]["samples"]] == [
            0, 1, 2, 3, 4
        ]
        # The kernel's queue-health gauges were refreshed mid-run.
        assert snap["timeseries"]["kernel.events_processed"]["samples"]

    def test_custom_probe_via_track(self):
        with use_registry() as registry:
            sim = Simulator()
            sampler = TelemetrySampler(sim, interval=2.0)
            state = {"level": 100.0}
            sampler.track("battery", lambda: state["level"])
            sampler.start()
            sim.schedule(3.0, lambda: state.update(level=40.0))
            sim.run(until=6.0)
        curve = registry.snapshot()["timeseries"]["battery"]["samples"]
        assert curve == [[2.0, 100.0], [4.0, 40.0], [6.0, 40.0]]

    def test_noop_under_null_registry(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, registry=NULL_REGISTRY).start()
        sim.schedule(0.5, lambda: None)
        sim.run(until=10.0)
        assert sampler.ticks == 0
        assert sim.events_processed == 1  # no telemetry.sample events ran

    def test_sampling_does_not_perturb_event_outcomes(self):
        """A sampled run executes the same application events in the
        same order as an unsampled one."""
        def run(sampled):
            order = []
            with use_registry():
                sim = Simulator()
                for i in range(20):
                    sim.schedule(0.1 + (i * 7 % 10), order.append, i)
                if sampled:
                    TelemetrySampler(sim, interval=0.5).start()
                sim.run(until=12.0)
            return order

        assert run(True) == run(False)

    def test_stop_cancels_future_ticks(self):
        with use_registry():
            sim = Simulator()
            sampler = TelemetrySampler(sim, interval=1.0).start()
            sim.schedule(2.5, sampler.stop)
            sim.run(until=10.0)
        assert sampler.ticks == 2

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetrySampler(Simulator(), interval=0.0)


class TestMerge:
    def test_counters_add_and_gauges_fold_extrema(self):
        a = MetricsRegistry()
        a.counter("tx").inc(3)
        a.gauge("depth").set(2)
        a.gauge("depth").set(5)
        b = MetricsRegistry()
        b.counter("tx").inc(4)
        b.counter("rx").inc(1)
        b.gauge("depth").set(1)
        a.merge(b.snapshot())
        assert a.counter("tx").value == 7
        assert a.counter("rx").value == 1
        assert a.gauge("depth").value == 1    # the later observation
        assert a.gauge("depth").min == 1
        assert a.gauge("depth").max == 5

    def test_histograms_combine_moments_and_extrema(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            a.histogram("lat").observe(v)
        for v in (10.0, 20.0):
            b.histogram("lat").observe(v)
        a.merge(b.snapshot())
        hist = a.histogram("lat")
        assert hist.count == 5
        assert hist.total == 36.0
        assert hist.min == 1.0
        assert hist.max == 20.0
        assert hist.p50 is not None

    def test_timeseries_interleave(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.timeseries("q").record(1.0, 1.0)
        b.timeseries("q").record(0.5, 0.5)
        b.timeseries("q").record(2.0, 2.0)
        a.merge(b.snapshot())
        assert a.timeseries("q").samples() == [
            (0.5, 0.5), (1.0, 1.0), (2.0, 2.0)
        ]

    def test_merge_into_disabled_registry_is_noop(self):
        src = MetricsRegistry()
        src.counter("x").inc()
        NULL_REGISTRY.merge(src.snapshot())
        assert NULL_REGISTRY.empty

    def test_merge_accepts_pre_telemetry_scalar_gauges(self):
        a = MetricsRegistry()
        a.merge({"gauges": {"depth": 7}})
        assert a.gauge("depth").value == 7
        assert a.gauge("depth").max == 7

    def test_merged_snapshot_round_trips(self):
        a = MetricsRegistry()
        a.counter("tx").inc(2)
        a.histogram("h").observe(1.0)
        a.timeseries("s").record(1.0, 2.0)
        fresh = MetricsRegistry()
        fresh.merge(a.snapshot())
        assert fresh.snapshot() == a.snapshot()

    def test_histogram_streams_moments(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.mean == 2.0
        assert hist.min == 1.0
        assert hist.max == 3.0

    def test_instruments_memoized_by_name_and_labels(self):
        registry = MetricsRegistry()
        assert registry.counter("drops", reason="x") is registry.counter(
            "drops", reason="x"
        )
        assert registry.counter("drops", reason="x") is not registry.counter(
            "drops", reason="y"
        )

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("m", x=1, y=2)
        b = registry.counter("m", y=2, x=1)
        assert a is b


class TestNullRegistry:
    def test_disabled_registry_hands_out_shared_noop(self):
        a = NULL_REGISTRY.counter("tx")
        b = NULL_REGISTRY.histogram("depth")
        assert isinstance(a, _NullInstrument)
        assert a is b

    def test_noop_instrument_absorbs_everything(self):
        instrument = NULL_REGISTRY.counter("x")
        instrument.inc()
        instrument.set(9)
        instrument.observe(1.0)
        assert instrument.value == 0
        assert NULL_REGISTRY.empty

    def test_registry_truthiness_tracks_enabled(self):
        assert MetricsRegistry()
        assert not NULL_REGISTRY


class TestUseRegistry:
    def test_default_is_null(self):
        assert current_registry() is NULL_REGISTRY

    def test_block_installs_and_restores(self):
        with use_registry() as registry:
            assert current_registry() is registry
            assert registry.enabled
        assert current_registry() is NULL_REGISTRY

    def test_nesting_is_a_stack(self):
        with use_registry() as outer:
            with use_registry() as inner:
                assert current_registry() is inner
            assert current_registry() is outer

    def test_explicit_registry_honoured(self):
        mine = MetricsRegistry()
        with use_registry(mine) as registry:
            assert registry is mine


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("tx").inc(2)
        registry.gauge("depth").set(4)
        registry.histogram("lat").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"tx": 2}
        assert snap["gauges"] == {"depth": {"value": 4, "min": 4, "max": 4}}
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["histograms"]["lat"]["mean"] == 0.5
        assert snap["timeseries"] == {}

    def test_labels_flattened_into_names(self):
        registry = MetricsRegistry()
        registry.counter("drops", reason="queue-full").inc()
        assert "drops{reason=queue-full}" in registry.snapshot()["counters"]

    def test_empty_and_format(self):
        registry = MetricsRegistry()
        assert registry.empty
        registry.counter("tx").inc()
        assert not registry.empty
        assert "tx" in registry.format()


class TestStackIntegration:
    def test_sensor_network_populates_active_registry(self):
        from repro.naming import AttributeVector
        from repro.naming.keys import Key
        from repro.radio import Topology
        from repro.testbed import SensorNetwork

        with use_registry() as registry:
            net = SensorNetwork(Topology.line(3, spacing=15.0), seed=2)
            sub = AttributeVector.builder().eq(Key.TYPE, "m").build()
            got = []
            net.api(0).subscribe(sub, lambda a, m: got.append(m))
            pub = net.api(2).publish(
                AttributeVector.builder().actual(Key.TYPE, "m").build()
            )
            for i in range(4):
                net.sim.schedule(
                    2.0 + 2.0 * i, net.api(2).send, pub,
                    AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
                )
            net.run(until=20.0)
        snap = registry.snapshot()
        assert got, "sanity: data should reach the sink"
        assert snap["counters"]["diffusion.delivered"] == len(got)
        assert snap["counters"]["diffusion.tx.messages"] > 0
        assert snap["counters"]["channel.fragments_sent"] > 0
        assert snap["counters"]["mac.enqueued"] > 0
        assert snap["histograms"]["mac.queue_depth"]["count"] > 0

    def test_per_class_tx_counters_split_the_totals(self):
        from repro.naming import AttributeVector
        from repro.naming.keys import Key
        from repro.radio import Topology
        from repro.testbed import SensorNetwork

        with use_registry() as registry:
            net = SensorNetwork(Topology.line(3, spacing=15.0), seed=2)
            sub = AttributeVector.builder().eq(Key.TYPE, "m").build()
            net.api(0).subscribe(sub, lambda a, m: None)
            pub = net.api(2).publish(
                AttributeVector.builder().actual(Key.TYPE, "m").build()
            )
            for i in range(4):
                net.sim.schedule(
                    2.0 + 2.0 * i, net.api(2).send, pub,
                    AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
                )
            net.run(until=20.0)
        counters = registry.snapshot()["counters"]
        per_class_msgs = {
            name: value
            for name, value in counters.items()
            if name.startswith("diffusion.tx.messages{")
        }
        assert counters["diffusion.tx.messages{class=interest}"] > 0
        assert counters["diffusion.tx.messages{class=data}"] > 0
        # The labeled counters are an exact partition of the totals.
        assert sum(per_class_msgs.values()) == counters["diffusion.tx.messages"]
        per_class_bytes = sum(
            value
            for name, value in counters.items()
            if name.startswith("diffusion.tx.bytes{")
        )
        assert per_class_bytes == counters["diffusion.tx.bytes"]

    def test_without_registry_network_records_nothing(self):
        from repro.radio import Topology
        from repro.testbed import SensorNetwork

        assert current_registry() is NULL_REGISTRY
        net = SensorNetwork(Topology.line(2, spacing=15.0), seed=2)
        net.run(until=1.0)
        assert NULL_REGISTRY.empty
