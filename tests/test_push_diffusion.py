"""Tests for one-phase push diffusion.

Paper Section 3.1: "although our example describes a particular usage
of the directed diffusion paradigm (a query-response type usage ...),
the paradigm itself is more general than that."  Push mode inverts the
roles: sources advertise, passive sinks reinforce back.
"""

import pytest

from repro.core import (
    DiffusionConfig,
    DiffusionNode,
    DiffusionRouting,
    MessageType,
)
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.sim import Simulator
from repro.testbed import IdealNetwork


def push_config(**kwargs):
    return DiffusionConfig(
        push_mode=True,
        reinforcement_jitter=0.05,
        exploratory_interval=10.0,
        **kwargs,
    )


def build_line(n, config=None):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01)
    nodes, apis = {}, {}
    for i in range(n):
        nodes[i] = DiffusionNode(
            sim, i, net.add_node(i), config=config or push_config()
        )
        apis[i] = DiffusionRouting(nodes[i])
    for i in range(n - 1):
        net.connect(i, i + 1)
    return sim, net, nodes, apis


def sub_attrs():
    return AttributeVector.builder().eq(Key.TYPE, "temp").build()


def pub_attrs():
    return AttributeVector.builder().actual(Key.TYPE, "temp").build()


def sample(seq):
    return AttributeVector.builder().actual(Key.SEQUENCE, seq).build()


class TestPushBasics:
    def test_no_interest_traffic_at_all(self):
        sim, net, nodes, apis = build_line(4)
        apis[0].subscribe(sub_attrs(), lambda a, m: None)
        sim.run(until=120.0)
        for node in nodes.values():
            assert node.stats.messages_by_type[MessageType.INTEREST] == 0

    def test_advertisement_reaches_passive_sink(self):
        sim, net, nodes, apis = build_line(4)
        received = []
        apis[0].subscribe(sub_attrs(), lambda a, m: received.append(a))
        pub = apis[3].publish(pub_attrs())
        sim.schedule(1.0, apis[3].send, pub, sample(0))
        sim.run(until=5.0)
        assert len(received) == 1

    def test_plain_data_follows_reinforced_path(self):
        sim, net, nodes, apis = build_line(4)
        received = []
        apis[0].subscribe(sub_attrs(), lambda a, m: received.append(a))
        pub = apis[3].publish(pub_attrs())
        for i in range(6):
            sim.schedule(1.0 + i, apis[3].send, pub, sample(i))
        sim.run(until=15.0)
        assert len(received) == 6
        # Messages 1..5 are plain and travel unicast: relay DATA counts.
        assert nodes[1].stats.messages_by_type[MessageType.DATA] == 5
        assert nodes[2].stats.messages_by_type[MessageType.DATA] == 5

    def test_advertisements_flood_even_without_sinks(self):
        sim, net, nodes, apis = build_line(4)
        pub = apis[3].publish(pub_attrs())
        sim.schedule(1.0, apis[3].send, pub, sample(0))
        sim.run(until=5.0)
        # The advertisement flooded the whole network — push's cost.
        for i in (0, 1, 2):
            assert (
                nodes[i].stats.messages_by_type[MessageType.EXPLORATORY_DATA]
                >= 0
            )
        assert nodes[3].stats.messages_by_type[MessageType.EXPLORATORY_DATA] == 1

    def test_plain_data_without_sinks_dropped_at_source(self):
        sim, net, nodes, apis = build_line(3)
        pub = apis[2].publish(pub_attrs())
        for i in range(3):
            sim.schedule(1.0 + i, apis[2].send, pub, sample(i))
        sim.run(until=20.0)
        # Advertisement flood happened, but the plain messages found no
        # reinforced gradient and died at the source.
        assert nodes[2].stats.messages_by_type[MessageType.DATA] == 0

    def test_non_matching_subscription_not_delivered(self):
        sim, net, nodes, apis = build_line(3)
        received = []
        other = AttributeVector.builder().eq(Key.TYPE, "humidity").build()
        apis[0].subscribe(other, lambda a, m: received.append(a))
        pub = apis[2].publish(pub_attrs())
        sim.schedule(1.0, apis[2].send, pub, sample(0))
        sim.run(until=5.0)
        assert received == []


class TestPushVsPullTradeoff:
    """The classic crossover: pull pays interest floods per sink; push
    pays advertisement floods per source."""

    @staticmethod
    def _run(push, n_sinks, n_sources, duration=120.0):
        # Star-of-lines: sources on one side, sinks on the other.
        sim = Simulator()
        net = IdealNetwork(sim, delay=0.01)
        config = (
            push_config()
            if push
            else DiffusionConfig(
                reinforcement_jitter=0.05,
                exploratory_interval=10.0,
                interest_interval=10.0,
                gradient_timeout=30.0,
                interest_jitter=0.1,
            )
        )
        total = n_sinks + n_sources + 1
        nodes, apis = {}, {}
        for i in range(total):
            nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
            apis[i] = DiffusionRouting(nodes[i])
        hub = total - 1
        for i in range(total - 1):
            net.connect(i, hub)
        received = []
        for sink in range(n_sinks):
            apis[sink].subscribe(sub_attrs(), lambda a, m: received.append(a))
        for source_index in range(n_sources):
            source = n_sinks + source_index
            pub = apis[source].publish(pub_attrs())
            for i in range(10):
                sim.schedule(1.0 + i * 10.0, apis[source].send, pub, sample(i))
        sim.run(until=duration)
        bytes_total = sum(n.stats.bytes_sent for n in nodes.values())
        return bytes_total, len(received)

    def test_pull_silent_without_sinks_push_keeps_advertising(self):
        # With no subscribers anywhere, pull sources never transmit
        # (sends are dropped for lack of demand) while push sources
        # keep paying for advertisement floods — pull's key advantage.
        pull_bytes, pull_rx = self._run(False, n_sinks=0, n_sources=6)
        push_bytes, push_rx = self._run(True, n_sinks=0, n_sources=6)
        assert pull_rx == 0 and push_rx == 0
        assert pull_bytes == 0
        assert push_bytes > 0

    def test_push_cheaper_with_many_sinks_one_source(self):
        pull_bytes, pull_rx = self._run(False, n_sinks=6, n_sources=1)
        push_bytes, push_rx = self._run(True, n_sinks=6, n_sources=1)
        assert pull_rx > 0 and push_rx > 0
        # Six sinks re-flooding interests every 10 s dwarf one source's
        # advertisements: pull costs more here.
        assert pull_bytes > push_bytes
