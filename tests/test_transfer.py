"""Tests for the reliable block-transfer scheme (paper Section 3.1's
'retransmission scheme for large, persistent data objects')."""

import pytest

from repro.core import DiffusionConfig
from repro.testbed.scenarios import ideal_line
from repro.transfer import (
    BLOCK_PAYLOAD_BYTES,
    BlockReceiver,
    BlockSender,
    DataObject,
    split_object,
)
from repro.transfer.blocks import join_blocks
from repro.transfer.sender import decode_block_list, encode_block_list


def fast_config():
    return DiffusionConfig(
        interest_interval=10.0,
        gradient_timeout=30.0,
        interest_jitter=0.1,
        reinforcement_jitter=0.05,
    )


def make_transfer(
    data: bytes,
    hops: int = 3,
    loss: float = 0.0,
    quiet_timeout: float = 3.0,
    block_interval: float = 0.2,
    max_repair_rounds: int = 10,
):
    sim, net, nodes, apis = ideal_line(
        hops, config=fast_config(), loss=loss, seed=7
    )
    done = []
    receiver = BlockReceiver(
        apis[0],
        object_id="obj-1",
        on_complete=lambda payload, stats: done.append((payload, stats)),
        quiet_timeout=quiet_timeout,
        max_repair_rounds=max_repair_rounds,
    )
    sender = BlockSender(apis[hops], block_interval=block_interval)
    obj = split_object("obj-1", data)
    # Give interests a moment to establish gradients in both directions.
    sim.schedule(1.0, sender.offer, obj, 0.0)
    return sim, sender, receiver, done


class TestBlocks:
    def test_split_and_payloads(self):
        data = bytes(range(256)) * 2
        obj = split_object("x", data)
        assert obj.block_count == 8
        assert obj.block_payload(0) == data[:BLOCK_PAYLOAD_BYTES]
        assert join_blocks(
            [obj.block_payload(i) for i in range(obj.block_count)]
        ) == data

    def test_last_block_short(self):
        obj = split_object("x", b"a" * (BLOCK_PAYLOAD_BYTES + 10))
        assert obj.block_count == 2
        assert len(obj.block_payload(1)) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            split_object("x", b"")

    def test_block_index_bounds(self):
        obj = split_object("x", b"abc")
        with pytest.raises(IndexError):
            obj.block_payload(1)

    def test_checksum_stable(self):
        assert split_object("x", b"abc").checksum() == split_object(
            "y", b"abc"
        ).checksum()

    def test_block_list_codec(self):
        indices = [5, 1, 900]
        assert decode_block_list(encode_block_list(indices)) == [1, 5, 900]
        with pytest.raises(ValueError):
            decode_block_list(b"\x01")


class TestLosslessTransfer:
    def test_object_delivered_intact(self):
        data = bytes(i % 251 for i in range(1000))
        sim, sender, receiver, done = make_transfer(data)
        sim.run(until=60.0)
        assert len(done) == 1
        payload, stats = done[0]
        assert payload == data
        assert stats.complete
        assert stats.blocks_received == split_object("z", data).block_count

    def test_no_repairs_needed_without_loss(self):
        data = bytes(500)
        sim, sender, receiver, done = make_transfer(data)
        sim.run(until=60.0)
        assert done[0][1].repair_rounds == 0
        assert sender.repairs_served == 0

    def test_single_block_object(self):
        sim, sender, receiver, done = make_transfer(b"tiny")
        sim.run(until=30.0)
        assert done[0][0] == b"tiny"


class TestLossyTransfer:
    def test_repair_recovers_all_blocks(self):
        data = bytes(i % 256 for i in range(2000))
        sim, sender, receiver, done = make_transfer(
            data, loss=0.12, quiet_timeout=3.0, max_repair_rounds=30
        )
        sim.run(until=900.0)
        assert len(done) == 1, f"missing: {receiver.missing_blocks()}"
        payload, stats = done[0]
        assert payload == data
        assert stats.repair_rounds >= 1
        assert sender.repairs_served >= 1

    def test_duplicates_counted_not_harmful(self):
        data = bytes(800)
        sim, sender, receiver, done = make_transfer(
            data, loss=0.10, quiet_timeout=3.0
        )
        sim.run(until=300.0)
        assert len(done) == 1
        assert done[0][0] == data

    def test_bounded_retries_give_up(self):
        # 100% loss beyond hop 1: the receiver must fail cleanly, not
        # spin forever.
        sim, net, nodes, apis = ideal_line(2, config=fast_config(), seed=3)
        done = []
        receiver = BlockReceiver(
            apis[0], "obj-1",
            on_complete=lambda p, s: done.append(p),
            quiet_timeout=1.0,
            max_repair_rounds=3,
        )
        sender = BlockSender(apis[2], block_interval=0.2)
        sim.schedule(1.0, sender.offer, split_object("obj-1", bytes(300)), 0.0)
        sim.schedule(2.0, net.disconnect, 0, 1)  # sever after setup
        sim.run(until=120.0)
        assert done == [] or len(done) == 1  # either early luck or failure
        if not done:
            assert receiver.failed
            assert receiver.stats.repair_rounds == 3

    def test_missing_blocks_reported(self):
        sim, net, nodes, apis = ideal_line(1, config=fast_config(), seed=3)
        receiver = BlockReceiver(
            apis[0], "obj-1", on_complete=lambda p, s: None, quiet_timeout=100.0
        )
        # No sender at all: nothing expected yet.
        sim.run(until=5.0)
        assert receiver.missing_blocks() == []
        assert receiver.stats.blocks_expected is None
