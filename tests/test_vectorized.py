"""Unit and property tests for the numpy batch engine.

Three layers of evidence, matching DESIGN §11's correctness contract:

* ``batch_hash_units`` replays CPython's tuple hash + splitmix64 in
  uint64 array ops — asserted *bit-identical* to ``channel._hash_unit``
  over adversarial seeds, node ids, and airtime floats.
* :class:`BatchLinkState` bound rows are supersets of the scalar
  ``link_prr_bound`` cut, and delivery rows carry exactly the scalar
  ``link_prr_window`` values, across random topologies × {Distance,
  Table, Gilbert–Elliot} × mobility epochs (hypothesis-driven).
* The availability switch (numpy import, ``REPRO_NO_NUMPY``) and the
  graceful scalar fallback, including the fallback counter.
"""

import math
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.radio import (
    Channel,
    DistancePropagation,
    GilbertElliotLink,
    Modem,
    TablePropagation,
    Topology,
    VectorizedPropagation,
    vectorize,
)
from repro.radio.channel import _hash_unit
from repro.radio.neighborhood import BoundaryIndex, NeighborhoodIndex
from repro.radio.vectorized import available, batch_hash_units
from repro.sim import SeedSequence, Simulator

numpy_missing = not available()
needs_numpy = pytest.mark.skipif(
    numpy_missing, reason="numpy unavailable or REPRO_NO_NUMPY set"
)


def random_topology(n_nodes: int, seed: int, side: float = 80.0) -> Topology:
    rng = random.Random(seed * 7919 + 13)
    topo = Topology()
    for node_id in range(n_nodes):
        topo.add_node(node_id, rng.uniform(0, side), rng.uniform(0, side))
    return topo


# -- hashed-draw exactness ---------------------------------------------------


@needs_numpy
class TestBatchHashUnits:
    @given(
        seed=st.integers(min_value=0, max_value=2**64 - 1),
        src=st.integers(min_value=0, max_value=10_000),
        dsts=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1, max_size=40,
        ),
        start=st.floats(
            min_value=0.0, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_bit_identical_to_scalar_hash(self, seed, src, dsts, start):
        draws = batch_hash_units(seed, src, dsts, start)
        assert draws is not None
        for dst, draw in zip(dsts, draws):
            assert draw == _hash_unit((seed, src, dst, start))

    def test_huge_seed_and_fractional_start(self):
        # Seeds beyond 2**64 and non-integral floats take the scalar
        # hash() path for their lanes; they must still match exactly.
        seed, src, start = 2**80 + 12345, 7, 3.724999999999
        dsts = list(range(64))
        draws = batch_hash_units(seed, src, dsts, start)
        assert draws == [
            _hash_unit((seed, src, dst, start)) for dst in dsts
        ]

    def test_negative_start_matches(self):
        dsts = [0, 1, 2]
        draws = batch_hash_units(3, 1, dsts, -0.5)
        assert draws == [_hash_unit((3, 1, dst, -0.5)) for dst in dsts]

    def test_empty_receiver_set(self):
        assert batch_hash_units(1, 2, [], 0.0) == []

    def test_out_of_identity_range_dst_falls_back(self):
        # hash(n) != n at the PyHash modulus; the batcher must refuse
        # rather than silently diverge from the scalar draw.
        assert batch_hash_units(1, 2, [2**61 - 1], 0.0) is None
        assert batch_hash_units(1, 2, [-1], 0.0) is None

    def test_draws_are_uniform_enough(self):
        draws = batch_hash_units(9, 3, list(range(2000)), 1.25)
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.45 < sum(draws) / len(draws) < 0.55


# -- struct-of-arrays link state ---------------------------------------------


def _models(topo, seed):
    """The three propagation families over one topology."""
    distance = DistancePropagation(topo, seed=seed)
    table = TablePropagation()
    rng = random.Random(seed + 17)
    ids = topo.node_ids()
    for src in ids:
        for dst in ids:
            if src != dst and rng.random() < 0.3:
                table.set_link(src, dst, rng.uniform(0.05, 1.0))
    gilbert = GilbertElliotLink(
        DistancePropagation(topo, seed=seed),
        mean_good=4.0, mean_bad=1.5, bad_scale=0.3, seed=seed,
    )
    return {"distance": distance, "table": table, "gilbert": gilbert}


@needs_numpy
class TestBatchLinkState:
    @given(
        n_nodes=st.integers(min_value=2, max_value=24),
        seed=st.integers(min_value=1, max_value=500),
        family=st.sampled_from(["distance", "table", "gilbert"]),
        now=st.floats(min_value=0.0, max_value=30.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bound_rows_are_supersets_and_windows_exact(
        self, n_nodes, seed, family, now
    ):
        topo = random_topology(n_nodes, seed)
        model = _models(topo, seed)[family]
        wrapped = vectorize(model)
        kernel = wrapped.batch_kernel()
        assert kernel is not None
        members = topo.node_ids()
        state = kernel.build_state(members, wrapped, 0.05)
        for src in members:
            audible = set(state.audible_ids(src))
            assert src not in audible
            for dst in members:
                if dst == src:
                    continue
                scalar_bound = model.link_prr_bound(src, dst)
                if scalar_bound > 0.0:
                    # Superset rule: the batch cut may only widen.
                    assert dst in audible
            pairs, valid_until = state.delivery_row(src, now)
            assert valid_until > now
            for dst, prr in pairs:
                assert prr == model.link_prr_window(src, dst, now)[0]
                assert prr > 0.0
            hearers, _valid = state.carrier_row(src, now)
            assert hearers == {dst for dst, prr in pairs if prr >= 0.05}

    def test_delivery_row_refreshes_after_expiry(self):
        topo = random_topology(8, 3)
        model = GilbertElliotLink(
            DistancePropagation(topo, seed=3),
            mean_good=2.0, mean_bad=1.0, bad_scale=0.2, seed=3,
        )
        wrapped = vectorize(model)
        state = wrapped.batch_kernel().build_state(
            topo.node_ids(), wrapped, 0.05
        )
        pairs0, valid0 = state.delivery_row(0, 0.0)
        assert valid0 < math.inf  # GE windows expire
        later = valid0 + 0.5
        pairs1, valid1 = state.delivery_row(0, later)
        assert valid1 > later
        for dst, prr in pairs1:
            assert prr == model.link_prr_window(0, dst, later)[0]

    def test_zero_prr_lane_can_flip_positive(self):
        # A GE lane in the bad state with bad_scale=0 is audible (bound
        # superset) but delivers at PRR 0 — until the window flips.  The
        # row's joint expiry must include such lanes.
        topo = Topology()
        topo.add_node(0, 0.0, 0.0)
        topo.add_node(1, 5.0, 0.0)
        model = GilbertElliotLink(
            DistancePropagation(topo, seed=11),
            mean_good=1.0, mean_bad=1.0, bad_scale=0.0, seed=11,
        )
        wrapped = vectorize(model)
        state = wrapped.batch_kernel().build_state([0, 1], wrapped, 0.05)
        t = 0.0
        saw_zero = saw_positive = False
        for _ in range(200):
            pairs, valid = state.delivery_row(0, t)
            if pairs:
                saw_positive = True
            else:
                saw_zero = True
            if saw_zero and saw_positive:
                break
            t = valid + 1e-6
        assert saw_zero and saw_positive


@needs_numpy
class TestVectorizedPropagation:
    def test_requires_fast_path_protocol(self):
        class NoProtocol:
            def link_prr(self, src, dst, now):
                return 1.0

        with pytest.raises(ValueError):
            VectorizedPropagation(NoProtocol())

    def test_vectorize_is_idempotent(self):
        topo = random_topology(4, 1)
        wrapped = vectorize(DistancePropagation(topo, seed=1))
        assert vectorize(wrapped) is wrapped

    def test_scalar_queries_delegate_verbatim(self):
        topo = random_topology(6, 2)
        base = DistancePropagation(topo, seed=2)
        wrapped = vectorize(base)
        for src in range(6):
            for dst in range(6):
                if src == dst:
                    continue
                assert wrapped.link_prr(src, dst, 1.0) == base.link_prr(
                    src, dst, 1.0
                )
                assert wrapped.link_prr_bound(src, dst) == base.link_prr_bound(
                    src, dst
                )
        assert wrapped.prr_epoch() == base.prr_epoch()
        assert wrapped.audible_reach() == base.audible_reach()

    def test_unknown_model_yields_no_kernel(self):
        topo = random_topology(4, 1)

        class Custom:
            """Fast-path capable, but no kernel knows its geometry."""

            def __init__(self):
                self.base = DistancePropagation(topo, seed=1)

            def link_prr(self, src, dst, now):
                return self.base.link_prr(src, dst, now)

            def prr_epoch(self):
                return self.base.prr_epoch()

            def link_prr_bound(self, src, dst):
                return self.base.link_prr_bound(src, dst)

            def link_prr_window(self, src, dst, now):
                return self.base.link_prr_window(src, dst, now)

        assert vectorize(Custom()).batch_kernel() is None


# -- availability switch and fallback ----------------------------------------


class TestAvailability:
    def test_env_var_disables_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert not available()
        topo = random_topology(4, 1)
        wrapped = vectorize(DistancePropagation(topo, seed=1))
        assert wrapped.batch_kernel() is None
        index = NeighborhoodIndex(wrapped, 0.05)
        assert not index.has_batch

    @needs_numpy
    def test_engine_reenables_when_env_cleared(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert not available()
        monkeypatch.delenv("REPRO_NO_NUMPY")
        assert available()

    @needs_numpy
    def test_channel_counts_fallbacks_when_unindexed(self):
        # vectorize() on a reference (indexed=False) channel can never
        # engage; every delivery counts one fallback.
        from repro.sim.metrics import MetricsRegistry

        registry = MetricsRegistry()
        topo = random_topology(3, 5, side=10.0)
        sim = Simulator()
        channel = Channel(
            sim, vectorize(DistancePropagation(topo, seed=5)),
            seeds=SeedSequence(5), metrics=registry, indexed=False,
        )
        for node_id in topo.node_ids():
            Modem(sim, channel, node_id)
        channel.start_transmission(0, "x", 27, 0.02)
        sim.run(until=1.0)
        snap = registry.snapshot()
        assert snap["counters"]["radio.vectorized_fallbacks"] == 1

    @needs_numpy
    def test_channel_records_batch_sizes_when_engaged(self):
        from repro.sim.metrics import MetricsRegistry

        registry = MetricsRegistry()
        topo = random_topology(6, 6, side=12.0)
        sim = Simulator()
        channel = Channel(
            sim, vectorize(DistancePropagation(topo, seed=6)),
            seeds=SeedSequence(6), metrics=registry,
        )
        for node_id in topo.node_ids():
            Modem(sim, channel, node_id)
        channel.start_transmission(0, "x", 27, 0.02)
        sim.run(until=1.0)
        assert channel.index is not None and channel.index.has_batch
        snap = registry.snapshot()
        hist = snap["histograms"]["radio.batch_size"]
        assert hist["count"] == 1
        assert snap["counters"].get("radio.vectorized_fallbacks", 0) == 0


# -- boundary index batch rebuild --------------------------------------------


@needs_numpy
class TestBoundaryBatchRebuild:
    def _indexes(self, n, seed, owned_frac=0.5, vectorized=True):
        topo = random_topology(n, seed)
        ids = topo.node_ids()
        owned = ids[: int(n * owned_frac)]
        foreign = ids[int(n * owned_frac):]
        model = DistancePropagation(topo, seed=seed)
        prop = vectorize(model) if vectorized else model
        return BoundaryIndex(prop, owned, foreign)

    @given(
        n=st.integers(min_value=4, max_value=30),
        seed=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_rebuild_matches_scalar_walk(self, n, seed):
        vec = self._indexes(n, seed, vectorized=True)
        ref = self._indexes(n, seed, vectorized=False)
        vec.sync()
        ref.sync()
        assert vec.boundary_senders() == ref.boundary_senders()
        for foreign in sorted(vec._in):
            assert vec._in[foreign] == ref._in.get(foreign, [])
        assert vec._out.keys() == ref._out.keys()
        for owned in vec._out:
            assert sorted(vec._out[owned]) == sorted(ref._out[owned])

    def test_lane_limit_falls_back_to_scalar_walk(self, monkeypatch):
        monkeypatch.setattr(BoundaryIndex, "BATCH_LANE_LIMIT", 4)
        vec = self._indexes(12, 9, vectorized=True)
        ref = self._indexes(12, 9, vectorized=False)
        vec.sync()
        ref.sync()
        assert vec.pair_checks > 0  # the scalar walk actually ran
        assert vec.boundary_senders() == ref.boundary_senders()
