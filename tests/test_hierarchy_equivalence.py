"""Flat-mode bit-identity and sharded-vs-oracle equivalence.

The two non-negotiables of the hierarchy layer: installing nothing
(flat mode) must leave the classic stack bit-identical, and the
sharded kernel must agree with the single-queue oracle in every mode.
"""

from repro.experiments.hierarchybench import flat_equivalence
from repro.shard import ShardPlan, run_oracle, run_sharded


def _params(mode, hierarchy):
    return {
        "columns": 8,
        "rows": 8,
        "spacing": 15.0,
        "region": 4,
        "duration": 20.0,
        "send_interval": 2.0,
        "mode": mode,
        "vectorized": True,
        "hierarchy": hierarchy,
    }


def _plan(mode, hierarchy, shards):
    return ShardPlan(
        scenario="hierarchy",
        params=_params(mode, hierarchy),
        seed=5,
        duration=20.0,
        shards=shards,
    )


class TestFlatBitIdentity:
    def test_flat_mode_matches_classic_regional_scenario(self):
        identical, classic, flat = flat_equivalence(
            columns=8, rows=8, region=4, duration=20.0, seed=13
        )
        assert identical, (
            "hierarchy scenario in flat mode diverged from the classic "
            f"regional scenario:\nclassic={classic}\nflat={flat}"
        )


class TestShardedEquivalence:
    def test_clustered_sharded_matches_oracle(self):
        hierarchy = {
            "announce_interval": 6.0,
            "announce_jitter": 1.0,
            "refresh_damping": 10.0,
        }
        oracle = run_oracle(_plan("clustered", hierarchy, shards=1))
        sharded = run_sharded(_plan("clustered", hierarchy, shards=2))
        assert sharded["outcome"] == oracle
        assert oracle["hierarchy"]["heads"] > 0

    def test_rendezvous_sharded_matches_oracle(self):
        hierarchy = {"regions": 3}
        oracle = run_oracle(_plan("rendezvous", hierarchy, shards=1))
        sharded = run_sharded(_plan("rendezvous", hierarchy, shards=2))
        assert sharded["outcome"] == oracle
        assert oracle["app_delivered"] > 0
