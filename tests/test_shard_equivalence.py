"""Shard-count equivalence: the acceptance suite for ``repro.shard``.

The sharded kernel's contract is that shard count is an execution
detail, never a modelling choice: for any deterministic scenario the
merged K-shard outcome must be bit-identical to the single-queue
oracle's.  These tests sweep the three scenario families (flood,
mobility, diffusion) across 1/2/4 shards on the inline transport, plus
one process-transport case and one k-means-partition case, asserting
dict equality of the full outcome (including sorted delivery lists
where the scenario reports them).
"""

import functools

import pytest

from repro.shard import ShardPlan, run_oracle, run_sharded

# Small deployments with real boundary traffic; durations chosen so
# every scenario family does meaningful work (diffusion data flows
# start at t=2.0 and need reinforcement round-trips).
CASES = {
    "flood": dict(
        scenario="flood", params={"columns": 8, "rows": 4},
        seed=11, duration=5.0,
    ),
    "mobility": dict(
        scenario="mobility", params={"columns": 8, "rows": 4},
        seed=11, duration=8.0,
    ),
    "diffusion": dict(
        scenario="diffusion",
        params={"columns": 6, "rows": 4, "duration": 12.0},
        seed=11, duration=12.0,
    ),
}


@functools.lru_cache(maxsize=None)
def oracle_outcome(case: str):
    spec = CASES[case]
    plan = ShardPlan(shards=1, **spec)
    outcome = run_oracle(plan)
    # The oracle itself must do real work or equality is vacuous.
    sent = outcome.get("sent", outcome.get("channel", {}).get("sent", 0))
    assert sent > 0
    return outcome


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("case", sorted(CASES))
def test_sharded_outcome_matches_oracle(case, shards):
    plan = ShardPlan(shards=shards, **CASES[case])
    result = run_sharded(plan, transport="inline")
    assert result["outcome"] == oracle_outcome(case)


@pytest.mark.parametrize("case", sorted(CASES))
def test_multi_shard_runs_exercise_the_cut(case):
    """Equivalence is only evidence if ghosts actually crossed the cut."""
    plan = ShardPlan(shards=2, **CASES[case])
    result = run_sharded(plan, transport="inline")
    assert result["outcome"] == oracle_outcome(case)
    assert sum(s["exports"] for s in result["shards"]) > 0
    assert sum(s["ghosts_admitted"] for s in result["shards"]) > 0


def test_kmeans_partition_is_also_equivalent():
    """The protocol must not depend on the grid cut's shape."""
    spec = dict(CASES["flood"], partition="kmeans")
    plan = ShardPlan(shards=3, **spec)
    result = run_sharded(plan, transport="inline")
    assert result["outcome"] == oracle_outcome("flood")


def test_process_transport_matches_oracle():
    """One worker process per shard over real pipes, same outcome."""
    plan = ShardPlan(shards=2, **CASES["flood"])
    result = run_sharded(plan, transport="process")
    assert result["outcome"] == oracle_outcome("flood")
    assert sum(s["ghosts_admitted"] for s in result["shards"]) > 0


def test_single_shard_inline_matches_oracle_stats():
    """A 1-shard run is the oracle modulo the windowing machinery: no
    exports, no ghosts, same outcome."""
    plan = ShardPlan(shards=1, **CASES["flood"])
    result = run_sharded(plan, transport="inline")
    assert result["outcome"] == oracle_outcome("flood")
    (stats,) = result["shards"]
    assert stats["exports"] == 0
    assert stats["ghosts_admitted"] == 0


needs_numpy = pytest.mark.skipif(
    not __import__("repro.radio.vectorized", fromlist=["available"]).available(),
    reason="numpy unavailable or REPRO_NO_NUMPY set",
)


@needs_numpy
@pytest.mark.parametrize("case", sorted(CASES))
def test_vectorized_shards_match_scalar_oracle(case):
    """The numpy batch engine must be invisible to sharding: vectorized
    workers (including ghost admission through the batch delivery rows)
    merge to the same outcome as the scalar single-queue oracle."""
    spec = CASES[case]
    plan = ShardPlan(
        shards=2, scenario=spec["scenario"],
        params={**spec["params"], "vectorized": True},
        seed=spec["seed"], duration=spec["duration"],
    )
    result = run_sharded(plan, transport="inline")
    assert result["outcome"] == oracle_outcome(case)
    assert sum(s["ghosts_admitted"] for s in result["shards"]) > 0


@needs_numpy
def test_vectorized_oracle_matches_scalar_oracle():
    spec = CASES["flood"]
    plan = ShardPlan(
        shards=1, scenario=spec["scenario"],
        params={**spec["params"], "vectorized": True},
        seed=spec["seed"], duration=spec["duration"],
    )
    assert run_oracle(plan) == oracle_outcome("flood")


def test_shard_stats_and_metrics_are_reported():
    plan = ShardPlan(shards=2, **CASES["flood"])
    result = run_sharded(plan, transport="inline")
    assert len(result["shards"]) == 2
    assert len(result["metrics"]) == 2
    for stats in result["shards"]:
        assert stats["rounds"] > 0
        assert stats["events"] > 0
        assert stats["busy_seconds"] > 0.0
    for snapshot in result["metrics"]:
        counters = snapshot["counters"]
        assert any(k.startswith("shard.rounds") for k in counters)
        assert any(
            k.startswith("kernel.events_processed")
            for k in snapshot["gauges"]
        )
