"""Property-based tests for micro-diffusion on random mote topologies."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.micro import MicroConfig, MicroDiffusionNode
from repro.sim import Simulator
from repro.testbed import IdealNetwork

TAG = 3


@st.composite
def mote_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    edges = set()
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges.add((parent, node))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return n, sorted(edges)


def build(n, edges, config=None):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.005)
    motes = {}
    for i in range(n):
        motes[i] = MicroDiffusionNode(sim, i, net.add_node(i), config=config)
    for a, b in edges:
        net.connect(a, b)
    return sim, motes


class TestMicroFloodInvariants:
    @given(mote_graphs())
    @settings(max_examples=40, deadline=None)
    def test_data_reaches_subscriber_exactly_once(self, graph):
        n, edges = graph
        sim, motes = build(n, edges)
        received = []
        motes[0].subscribe(TAG, received.append)
        sim.schedule(1.0, motes[n - 1].send, TAG, b"\x01")
        sim.run(until=10.0)
        assert len(received) == (1 if n > 1 else 0) or n == 1

    @given(mote_graphs())
    @settings(max_examples=40, deadline=None)
    def test_interest_transmitted_at_most_once_per_node(self, graph):
        n, edges = graph
        sim, motes = build(n, edges)
        motes[0].subscribe(TAG, lambda m: None)
        sim.run(until=5.0)
        for mote in motes.values():
            assert mote.stats_tx_messages <= 1

    @given(mote_graphs(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_static_tables_never_exceed_configured_sizes(self, graph, size):
        n, edges = graph
        config = MicroConfig(max_gradients=size, cache_packets=size)
        sim, motes = build(n, edges, config=config)
        received = []
        motes[0].subscribe(TAG, received.append)
        for i in range(6):
            sim.schedule(1.0 + i, motes[n - 1].send, TAG, bytes([i]))
        sim.run(until=20.0)
        for mote in motes.values():
            assert len(mote.gradients) <= size
            assert len(mote.cache) <= size

    @given(mote_graphs())
    @settings(max_examples=30, deadline=None)
    def test_quiesces(self, graph):
        n, edges = graph
        sim, motes = build(n, edges)
        motes[0].subscribe(TAG, lambda m: None)
        sim.schedule(1.0, motes[n - 1].send, TAG, b"\x01")
        sim.run(until=30.0, max_events=10_000)
        assert sim.events_processed < 10_000
