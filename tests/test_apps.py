"""Tests for the sensor applications over the full simulated stack."""

import pytest

from repro.apps import (
    DetectionSource,
    LightSensor,
    NestedQueryExperiment,
    SurveillanceExperiment,
    SynchronizedEventClock,
)
from repro.apps.sensors import AudioEmitter
from repro.core import DiffusionConfig, MessageType
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio import Topology
from repro.testbed import (
    FIG8_SINK,
    FIG8_SOURCES,
    FIG9_AUDIO,
    FIG9_LIGHTS,
    FIG9_USER,
    SensorNetwork,
    isi_testbed_network,
)


class TestSynchronizedEventClock:
    def test_sequence_advances_with_interval(self):
        clock = SynchronizedEventClock(interval=6.0)
        assert clock.sequence_at(0.0) == 0
        assert clock.sequence_at(5.9) == 0
        assert clock.sequence_at(6.0) == 1
        assert clock.sequence_at(61.0) == 10

    def test_next_event_time(self):
        clock = SynchronizedEventClock(interval=6.0)
        assert clock.next_event_time(0.0) == 6.0
        assert clock.next_event_time(6.0) == 12.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            SynchronizedEventClock(interval=0.0)


class TestDetectionSource:
    def test_events_are_paper_sized(self):
        net = SensorNetwork(Topology.line(2, spacing=10.0))
        sizes = []
        net.trace.subscribe(
            "diffusion.tx",
            lambda r: sizes.append(r.data["nbytes"])
            if r.data["msg_type"] in ("DATA", "EXPLORATORY_DATA")
            else None,
        )
        sink_sub = AttributeVector.builder().eq(Key.TYPE, "surveillance").build()
        net.api(0).subscribe(sink_sub, lambda a, m: None)
        clock = SynchronizedEventClock()
        DetectionSource(net.api(1), clock, event_bytes=112)
        net.run(until=30.0)
        assert sizes
        assert all(s == 112 for s in sizes)

    def test_sources_share_sequence_numbers(self):
        net = SensorNetwork(Topology.line(3, spacing=10.0))
        seqs = {1: [], 2: []}
        sink_sub = AttributeVector.builder().eq(Key.TYPE, "surveillance").build()

        def on_data(attrs, msg):
            seqs[msg.data_origin].append(attrs.value_of(Key.SEQUENCE))

        net.api(0).subscribe(sink_sub, on_data)
        clock = SynchronizedEventClock()
        DetectionSource(net.api(1), clock)
        DetectionSource(net.api(2), clock)
        net.run(until=30.0)
        assert set(seqs[1]) & set(seqs[2])  # same event numbering


class TestSurveillanceExperiment:
    def test_suppression_reduces_bytes_multi_source(self):
        results = {}
        for suppression in (True, False):
            values = []
            for seed in (11, 12):
                net = isi_testbed_network(seed=seed)
                exp = SurveillanceExperiment(
                    net, FIG8_SINK, FIG8_SOURCES, suppression=suppression
                )
                values.append(exp.run(duration=400.0).bytes_per_event)
            results[suppression] = sum(values) / len(values)
        assert results[True] < results[False]

    def test_sink_receives_majority_of_events_single_source(self):
        net = isi_testbed_network(seed=11)
        exp = SurveillanceExperiment(
            net, FIG8_SINK, FIG8_SOURCES[:1], suppression=True
        )
        result = exp.run(duration=400.0)
        assert result.delivery_ratio > 0.4
        assert result.distinct_events_received <= result.events_generated

    def test_result_units(self):
        net = isi_testbed_network(seed=11)
        exp = SurveillanceExperiment(net, FIG8_SINK, FIG8_SOURCES[:1])
        result = exp.run(duration=200.0)
        assert result.bytes_per_event > 0
        assert result.sources == 1
        assert result.duration == 200.0

    def test_zero_delivery_gives_infinite_bytes_per_event(self):
        from repro.apps.surveillance import SurveillanceResult

        r = SurveillanceResult(
            sources=1, suppression=True, duration=1.0,
            distinct_events_received=0, total_receptions=0,
            events_generated=10, diffusion_bytes_sent=100,
            diffusion_messages_sent=10,
        )
        assert r.bytes_per_event == float("inf")
        assert r.delivery_ratio == 0.0


class TestNestedQueryExperiment:
    def test_nested_beats_flat_at_scale(self):
        """The paper's core Figure 9 claim, at 4 sensors."""
        def mean_delivery(nested):
            values = []
            for seed in (21, 22):
                net = isi_testbed_network(seed=seed)
                exp = NestedQueryExperiment(
                    net, FIG9_USER, FIG9_AUDIO, FIG9_LIGHTS, nested=nested
                )
                values.append(exp.run(duration=600.0).delivery_percentage)
            return sum(values) / len(values)

        assert mean_delivery(True) > mean_delivery(False)

    def test_nested_localizes_light_traffic(self):
        """In nested mode light data stops at the audio node: nodes on
        the user side of the network carry (almost) no light bytes."""
        net = isi_testbed_network(seed=21)
        exp = NestedQueryExperiment(
            net, FIG9_USER, FIG9_AUDIO, FIG9_LIGHTS[:2], nested=True
        )
        exp.run(duration=300.0)
        # Node 18 is far on the sink side; in nested mode it should
        # forward little beyond interest floods.
        far_node = net.node(18)
        data_msgs = (
            far_node.stats.messages_by_type[MessageType.DATA]
            + far_node.stats.messages_by_type[MessageType.EXPLORATORY_DATA]
        )
        # Light reports alone would be ~300; only sporadic audio floods
        # and stray light exploratory floods pass this far.
        assert data_msgs < 100

    def test_possible_events_counts_transitions(self):
        net = isi_testbed_network(seed=21)
        exp = NestedQueryExperiment(
            net, FIG9_USER, FIG9_AUDIO, FIG9_LIGHTS[:3], nested=True,
            toggle_interval=60.0,
        )
        assert exp.possible_events(600.0) == 30  # 10 transitions x 3 lights

    def test_audio_emitter_message_size(self):
        net = SensorNetwork(Topology.line(2, spacing=10.0))
        sizes = []
        net.trace.subscribe(
            "diffusion.tx",
            lambda r: sizes.append(r.data["nbytes"])
            if r.data["msg_type"] in ("DATA", "EXPLORATORY_DATA")
            else None,
        )
        sub = AttributeVector.builder().eq(Key.TYPE, "audio").build()
        net.api(0).subscribe(sub, lambda a, m: None)
        emitter = AudioEmitter(net.api(1), message_bytes=100)
        net.sim.schedule(1.0, emitter.emit, "light-9", 1)
        net.run(until=5.0)
        assert sizes == [100]


class TestLightSensor:
    def test_state_epoch_toggles_every_minute(self):
        net = SensorNetwork(Topology.line(2, spacing=10.0))
        light = LightSensor(net.api(1))
        assert light.state_epoch(59.0) == 0
        assert light.state_epoch(60.0) == 1
        assert light.state(0.0) != light.state(60.0)
        assert light.state(0.0) == light.state(120.0)

    def test_reports_every_two_seconds(self):
        net = SensorNetwork(Topology.line(2, spacing=10.0))
        sub = AttributeVector.builder().eq(Key.TYPE, "light").build()
        reports = []
        net.api(0).subscribe(sub, lambda a, m: reports.append(a))
        LightSensor(net.api(1))
        net.run(until=21.0)
        # ~10 reports in 20 s, minus radio losses.
        assert len(reports) >= 7
        epochs = {a.value_of(Key.TIMESTAMP) for a in reports}
        assert epochs == {0}
