"""Fast-variant tests for the experiment harnesses.

Full paper-scale runs live in benchmarks/; these verify the harness
plumbing (parameter validation, result structure, table/chart
formatting) at reduced durations.
"""

import pytest

from repro.experiments import (
    MatchingVariant,
    build_set_a,
    build_set_b,
    measure_matching,
    run_duty_cycle_analysis,
    run_fig8,
    run_fig8_trial,
    run_fig9,
    run_fig9_trial,
)
from repro.experiments.fig8_aggregation import format_chart as fig8_chart
from repro.experiments.fig8_aggregation import format_table as fig8_table
from repro.experiments.fig8_aggregation import savings_at
from repro.experiments.fig9_nested import format_table as fig9_table
from repro.experiments.fig9_nested import loss_reduction_at
from repro.experiments.fig11_matching import format_chart as fig11_chart
from repro.experiments.fig11_matching import format_table as fig11_table
from repro.experiments.duty_cycle import format_table as duty_table
from repro.experiments.runner import main as runner_main


class TestFig8Harness:
    def test_trial_result_structure(self):
        result = run_fig8_trial(2, True, seed=1, duration=240.0)
        assert result.sources == 2
        assert result.suppression is True
        assert result.diffusion_bytes_sent > 0
        assert 0.0 <= result.delivery_ratio <= 1.0

    def test_invalid_source_count(self):
        with pytest.raises(ValueError):
            run_fig8_trial(0, True, seed=1)
        with pytest.raises(ValueError):
            run_fig8_trial(5, True, seed=1)

    def test_sweep_and_formatting(self):
        points = run_fig8(source_counts=(1, 2), trials=2, duration=240.0)
        assert len(points) == 4
        table = fig8_table(points)
        assert "with suppression" in table
        chart = fig8_chart(points)
        assert "Figure 8" in chart
        assert isinstance(savings_at(points, 2), float)

    def test_points_carry_trials(self):
        points = run_fig8(source_counts=(1,), trials=2, duration=240.0)
        assert all(len(p.trials) == 2 for p in points)
        assert all(p.bytes_per_event.n == 2 for p in points)


class TestFig9Harness:
    def test_trial_result_structure(self):
        result = run_fig9_trial(1, True, seed=1, duration=240.0)
        assert result.num_lights == 1
        assert result.possible_events == 4
        assert 0.0 <= result.delivery_percentage <= 100.0

    def test_invalid_light_count(self):
        with pytest.raises(ValueError):
            run_fig9_trial(0, True, seed=1)

    def test_sweep_and_formatting(self):
        points = run_fig9(light_counts=(1,), trials=2, duration=240.0)
        assert len(points) == 2
        table = fig9_table(points)
        assert "nested" in table
        assert isinstance(loss_reduction_at(points, 1), float)


class TestFig11Harness:
    def test_set_sizes(self):
        assert len(build_set_a()) == 8
        assert len(build_set_b(6, MatchingVariant.MATCH_IS)) == 6
        assert len(build_set_b(30, MatchingVariant.MATCH_EQ)) == 30

    def test_set_b_minimum_size(self):
        with pytest.raises(ValueError):
            build_set_b(5, MatchingVariant.MATCH_IS)

    @pytest.mark.parametrize("variant", list(MatchingVariant))
    def test_measure_validates_expected_outcome(self, variant):
        m = measure_matching(variant, 10, iterations=50)
        assert m.matched == variant.matches
        assert m.seconds_per_match > 0

    def test_formatting(self):
        measurements = [
            measure_matching(v, s, iterations=20)
            for v in MatchingVariant
            for s in (6, 10)
        ]
        table = fig11_table(measurements)
        assert "match/eq" in table
        chart = fig11_chart(measurements)
        assert "Figure 11" in chart


class TestDutyHarness:
    def test_rows_and_formatting(self):
        rows = run_duty_cycle_analysis()
        assert any("note" in r for r in rows)
        table = duty_table(rows)
        assert "listen" in table


class TestRunner:
    def test_quick_single_experiment(self, capsys):
        assert runner_main(["--quick", "--only", "duty"]) == 0
        out = capsys.readouterr().out
        assert "[duty]" in out
        assert "listen" in out

    def test_quick_model_and_micro(self, capsys):
        assert runner_main(["--quick", "--only", "model"]) == 0
        assert runner_main(["--quick", "--only", "micro"]) == 0
        out = capsys.readouterr().out
        assert "analytical traffic model" in out
        assert "footprint" in out

    def test_only_is_repeatable(self, capsys):
        assert runner_main(
            ["--quick", "--only", "model", "--only", "micro"]
        ) == 0
        out = capsys.readouterr().out
        assert "[model]" in out
        assert "[micro]" in out

    def test_jobs_runs_sections_through_campaign_pool(self, capsys):
        assert runner_main(
            ["--quick", "--only", "model", "--only", "micro", "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        # both sections present, in canonical order, with timing lines
        assert out.index("[model]") < out.index("[micro]")
        assert "analytical traffic model" in out
        assert "footprint" in out
