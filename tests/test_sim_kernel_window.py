"""Kernel APIs added for the sharded kernel: window stepping, the
deterministic (time, priority, seq) event order, the schedule observer,
queue introspection, and queue-health metrics.

``test_identical_streams_produce_identical_event_sequences`` is the
regression the sharded equivalence proof rests on: two identically
seeded simulators must dispatch byte-identical event sequences, which
is only true if tie-breaking is fully explicit.
"""

import random

import pytest

from repro.sim import Simulator, SimulationError
from repro.sim.metrics import use_registry


# ---------------------------------------------------------------------------
# Deterministic ordering: (time, priority, seq)


def test_priority_orders_same_instant_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "default")        # priority 0, seq 0
    sim.schedule(1.0, fired.append, "late", priority=5)
    sim.schedule(1.0, fired.append, "early", priority=-5)
    sim.run()
    assert fired == ["early", "default", "late"]


def test_seq_breaks_ties_within_a_priority():
    sim = Simulator()
    fired = []
    for label in ("a", "b", "c"):
        sim.schedule(2.0, fired.append, label, priority=-1)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_time_dominates_priority():
    """An earlier event runs first no matter how low-priority it is."""
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early-low-priority", priority=99)
    sim.schedule(2.0, fired.append, "late-high-priority", priority=-99)
    sim.run()
    assert fired == ["early-low-priority", "late-high-priority"]


def test_identical_streams_produce_identical_event_sequences():
    """Two identically seeded runs dispatch the same (time, name)
    sequence — the determinism the shard equivalence proof requires."""

    def run_once(seed):
        sim = Simulator()
        rng = random.Random(seed)
        dispatched = []

        def tick(label):
            dispatched.append((sim.now, label))
            if len(dispatched) < 200:
                # Deliberately collide timestamps and priorities.
                delay = rng.choice([0.0, 0.5, 0.5, 1.0])
                sim.schedule(
                    delay, tick, f"{label}/{len(dispatched)}",
                    priority=rng.choice([-1, 0, 1]),
                )

        for i in range(5):
            sim.schedule(0.5, tick, f"root{i}")
        sim.run()
        return dispatched

    assert run_once(42) == run_once(42)


# ---------------------------------------------------------------------------
# run_window


def test_run_window_is_exclusive_by_default():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in")
    sim.schedule(2.0, fired.append, "at-horizon")
    processed = sim.run_window(2.0)
    assert processed == 1
    assert fired == ["in"]
    assert sim.pending == 1


def test_run_window_inclusive_executes_horizon_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in")
    sim.schedule(2.0, fired.append, "at-horizon")
    processed = sim.run_window(2.0, inclusive=True)
    assert processed == 2
    assert fired == ["in", "at-horizon"]


def test_run_window_leaves_clock_at_last_event():
    """The clock must not jump to the horizon: ghosts from other shards
    may still be injected anywhere inside the window."""
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_window(5.0)
    assert sim.now == 1.0
    # Injecting behind the horizon but after `now` must be legal.
    sim.schedule_at(3.0, lambda: None)


def test_run_window_advance_clock_settles_on_horizon():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_window(5.0, advance_clock=True)
    assert sim.now == 5.0


def test_run_window_successive_windows_partition_the_timeline():
    sim = Simulator()
    fired = []
    for t in (0.5, 1.0, 1.5, 2.0, 2.5):
        sim.schedule(t, fired.append, t)
    assert sim.run_window(1.0) == 1            # 0.5 only
    assert sim.run_window(2.0, inclusive=True) == 3  # 1.0, 1.5, 2.0
    assert sim.run_window(9.0) == 1            # 2.5
    assert fired == [0.5, 1.0, 1.5, 2.0, 2.5]


def test_run_window_is_not_reentrant():
    sim = Simulator()

    def reenter():
        sim.run_window(2.0)

    sim.schedule(1.0, reenter)
    with pytest.raises(SimulationError):
        sim.run_window(5.0)


def test_stop_interrupts_a_window():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, fired.append, "b")
    sim.run_window(5.0, advance_clock=True)
    assert fired == ["a"]
    # A stopped window must not settle the clock on the horizon: the
    # stop exists so a shard can end the window early and re-plan.
    assert sim.now == 1.0
    assert sim.pending == 1


# ---------------------------------------------------------------------------
# Schedule observer and queue introspection


def test_schedule_observer_sees_every_event():
    sim = Simulator()
    seen = []
    sim.set_schedule_observer(seen.append)
    e1 = sim.schedule(1.0, lambda: None, name="one")
    e2 = sim.schedule_at(2.0, lambda: None, name="two")
    assert seen == [e1, e2]


def test_schedule_observer_sees_events_scheduled_during_dispatch():
    sim = Simulator()
    names = []
    sim.set_schedule_observer(lambda e: names.append(e.name))
    sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: None, name="child"),
                 name="parent")
    sim.run()
    assert names == ["parent", "child"]


def test_schedule_observer_removed_with_none():
    sim = Simulator()
    seen = []
    sim.set_schedule_observer(seen.append)
    sim.schedule(1.0, lambda: None)
    sim.set_schedule_observer(None)
    sim.schedule(2.0, lambda: None)
    assert len(seen) == 1


def test_pending_events_skips_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None, name="keep")
    drop = sim.schedule(2.0, lambda: None, name="drop")
    drop.cancel()
    assert list(sim.pending_events()) == [keep]
    assert sim.pending == 1


def test_dispatch_clears_event_owner():
    """After dispatch the event's owner is cleared — the marker the
    shard runtime uses to prune executed events from its bookkeeping."""
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    assert event._owner is sim
    sim.run()
    assert event._owner is None


# ---------------------------------------------------------------------------
# Queue-health metrics in the registry


def test_cancel_and_compaction_metrics_reach_the_registry():
    with use_registry() as registry:
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None)
                  for i in range(200)]
        for event in events[:150]:
            event.cancel()
        snapshot = registry.snapshot()
    assert snapshot["counters"]["kernel.cancelled_events"] == 150
    # 150 cancelled out of 200 crosses both compaction thresholds.
    assert snapshot["counters"]["kernel.compactions"] >= 1
    assert snapshot["counters"]["kernel.compactions"] == sim.compactions


def test_run_settles_processed_and_pending_gauges():
    with use_registry() as registry:
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.schedule(3.0, lambda: None)
        sim.run(until=2.0)
        snapshot = registry.snapshot()
    assert snapshot["gauges"]["kernel.events_processed"]["value"] == 2
    assert snapshot["gauges"]["kernel.pending_events"]["value"] == 1


def test_run_window_settles_gauges_too():
    with use_registry() as registry:
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run_window(2.5)
        snapshot = registry.snapshot()
    assert snapshot["gauges"]["kernel.events_processed"]["value"] == 2
    assert snapshot["gauges"]["kernel.pending_events"]["value"] == 1
