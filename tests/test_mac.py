"""Tests for the CSMA and TDMA MAC layers."""

import random

import pytest

from repro.mac import CsmaMac, TdmaMac
from repro.radio import Channel, Modem, RadioParams, TablePropagation
from repro.sim import SeedSequence, Simulator


def make_csma_net(links, n_nodes=3):
    sim = Simulator()
    channel = Channel(sim, TablePropagation(links), seeds=SeedSequence(1))
    modems = [Modem(sim, channel, node_id=i) for i in range(n_nodes)]
    macs = [
        CsmaMac(sim, modem, rng=random.Random(100 + i))
        for i, modem in enumerate(modems)
    ]
    return sim, channel, modems, macs


class Sink:
    def __init__(self, modem):
        self.received = []
        modem.receive_callback = self._on_receive

    def _on_receive(self, payload, src, nbytes, link_dst):
        self.received.append((payload, src))


class TestCsma:
    def test_single_fragment_delivery(self):
        sim, channel, modems, macs = make_csma_net({(0, 1): 1.0})
        sink = Sink(modems[1])
        macs[0].enqueue("hello", 20)
        sim.run()
        assert sink.received == [("hello", 0)]

    def test_queue_drains_in_order(self):
        sim, channel, modems, macs = make_csma_net({(0, 1): 1.0})
        sink = Sink(modems[1])
        for i in range(5):
            macs[0].enqueue(f"m{i}", 10)
        sim.run()
        assert [p for p, _ in sink.received] == [f"m{i}" for i in range(5)]

    def test_queue_overflow_drops(self):
        sim, channel, modems, macs = make_csma_net({(0, 1): 1.0})
        macs[0].queue_limit = 4
        accepted = [macs[0].enqueue(f"m{i}", 10) for i in range(8)]
        assert accepted.count(True) == 4
        assert macs[0].stats.dropped_queue_full == 4

    def test_carrier_sense_avoids_collision(self):
        # 0 and 2 CAN hear each other here; with carrier sensing their
        # back-to-back broadcasts must both reach 1.
        links = {(0, 1): 1.0, (2, 1): 1.0, (0, 2): 1.0, (2, 0): 1.0}
        sim, channel, modems, macs = make_csma_net(links)
        sink = Sink(modems[1])
        macs[0].enqueue("a", 27)
        macs[2].enqueue("b", 27)
        sim.run()
        assert len(sink.received) == 2

    def test_hidden_terminals_still_collide_under_load(self):
        # 0 and 2 cannot hear each other: offered load high enough that
        # overlap is certain to happen sometimes.
        links = {(0, 1): 1.0, (2, 1): 1.0}
        sim, channel, modems, macs = make_csma_net(links)
        sink = Sink(modems[1])
        for i in range(50):
            sim.schedule(i * 0.02, macs[0].enqueue, f"a{i}", 27)
            sim.schedule(i * 0.02, macs[2].enqueue, f"b{i}", 27)
        sim.run()
        assert channel.fragments_collided > 0
        assert len(sink.received) < 100

    def test_backoff_counter_increments(self):
        links = {(0, 1): 1.0, (2, 1): 1.0, (0, 2): 1.0, (2, 0): 1.0}
        sim, channel, modems, macs = make_csma_net(links)
        for i in range(20):
            macs[0].enqueue(f"a{i}", 27)
            macs[2].enqueue(f"b{i}", 27)
        sim.run()
        assert macs[0].stats.backoffs + macs[2].stats.backoffs > 0

    def test_stats_transmitted(self):
        sim, channel, modems, macs = make_csma_net({(0, 1): 1.0})
        for i in range(3):
            macs[0].enqueue(f"m{i}", 10)
        sim.run()
        assert macs[0].stats.transmitted == 3
        assert macs[0].stats.enqueued == 3


class TestTdma:
    def make_tdma_net(self, links, n_nodes=3):
        sim = Simulator()
        channel = Channel(sim, TablePropagation(links), seeds=SeedSequence(1))
        modems = [Modem(sim, channel, node_id=i) for i in range(n_nodes)]
        macs = [
            TdmaMac(sim, modem, slot_index=i, slot_count=n_nodes)
            for i, modem in enumerate(modems)
        ]
        return sim, channel, modems, macs

    def test_slot_owners_never_collide(self):
        # Hidden terminals that would collide under CSMA are safe in TDMA.
        links = {(0, 1): 1.0, (2, 1): 1.0}
        sim, channel, modems, macs = self.make_tdma_net(links)
        sink = Sink(modems[1])
        for i in range(20):
            sim.schedule(i * 0.01, macs[0].enqueue, f"a{i}", 27)
            sim.schedule(i * 0.01, macs[2].enqueue, f"b{i}", 27)
        sim.run()
        assert channel.fragments_collided == 0
        assert len(sink.received) == 40

    def test_next_slot_start(self):
        sim = Simulator()
        channel = Channel(sim, TablePropagation({}))
        modem = Modem(sim, channel, node_id=0)
        mac = TdmaMac(sim, modem, slot_index=1, slot_count=4, slot_duration=0.05)
        assert mac.next_slot_start(0.0) == pytest.approx(0.05)
        assert mac.next_slot_start(0.06) == pytest.approx(0.25)
        assert mac.frame_duration == pytest.approx(0.2)

    def test_duty_cycle(self):
        sim = Simulator()
        channel = Channel(sim, TablePropagation({}))
        modem = Modem(sim, channel, node_id=0)
        mac = TdmaMac(sim, modem, slot_index=0, slot_count=10)
        assert mac.duty_cycle() == pytest.approx(0.9)

    def test_invalid_slot_rejected(self):
        sim = Simulator()
        channel = Channel(sim, TablePropagation({}))
        modem = Modem(sim, channel, node_id=0)
        with pytest.raises(ValueError):
            TdmaMac(sim, modem, slot_index=4, slot_count=4)

    def test_transmission_confined_to_own_slot(self):
        links = {(0, 1): 1.0}
        sim, channel, modems, macs = self.make_tdma_net(links, n_nodes=2)
        times = []
        original = modems[0].transmit_fragment

        def spy(payload, nbytes, link_dst=None, on_done=None):
            times.append(sim.now)
            return original(payload, nbytes, link_dst, on_done)

        modems[0].transmit_fragment = spy
        for i in range(5):
            macs[0].enqueue(f"m{i}", 20)
        sim.run()
        frame = macs[0].frame_duration
        slot = macs[0].slot_duration
        for t in times:
            position = t % frame
            assert 0.0 <= position < slot
