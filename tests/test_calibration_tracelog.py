"""Tests for the calibration reports and trace logging tools."""

import pytest

from repro.analysis.tracelog import (
    TraceLogger,
    load_trace,
    summarize_trace,
)
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio import DistancePropagation, TablePropagation, Topology
from repro.sim import TraceBus
from repro.testbed import SensorNetwork
from repro.testbed.calibration import (
    LinkReport,
    link_reports,
    summarize,
    usable_graph,
    validate_isi,
)


class TestLinkReports:
    def _model(self):
        topo = Topology()
        topo.add_node(1, 0.0, 0.0)
        topo.add_node(2, 15.0, 0.0)
        topo.add_node(3, 100.0, 0.0)
        return topo, DistancePropagation(topo, asymmetry=0.0)

    def test_out_of_range_pairs_excluded(self):
        topo, prop = self._model()
        reports = link_reports(topo, prop)
        pairs = {(r.a, r.b) for r in reports}
        assert (1, 2) in pairs
        assert (1, 3) not in pairs

    def test_usable_and_asymmetry(self):
        report = LinkReport(a=1, b=2, prr_ab=0.9, prr_ba=0.7)
        assert report.usable
        assert report.asymmetry == pytest.approx(0.2)
        assert not report.one_way_only

    def test_one_way_only_flagged(self):
        report = LinkReport(a=1, b=2, prr_ab=0.9, prr_ba=0.1)
        assert report.one_way_only
        assert not report.usable

    def test_usable_graph_and_summary(self):
        topo = Topology()
        for i, x in enumerate([0.0, 15.0, 30.0, 45.0]):
            topo.add_node(i, x, 0.0)
        prop = DistancePropagation(topo, asymmetry=0.0)
        graph = usable_graph(topo, prop)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        summary = summarize(topo, prop, pairs_of_interest=[(0, 3)])
        assert summary.connected
        assert summary.diameter_hops == 3
        assert summary.hop_counts[(0, 3)] == 3

    def test_disconnected_summary(self):
        topo = Topology()
        topo.add_node(1, 0.0, 0.0)
        topo.add_node(2, 500.0, 0.0)
        prop = DistancePropagation(topo)
        summary = summarize(topo, prop, pairs_of_interest=[(1, 2)])
        assert not summary.connected
        assert summary.diameter_hops is None
        assert summary.hop_counts[(1, 2)] is None


class TestIsiValidation:
    def test_all_textual_constraints_hold(self):
        checks = validate_isi()
        assert all(checks.values()), checks

    def test_holds_across_seeds(self):
        for seed in (1, 2, 3):
            checks = validate_isi(seed=seed)
            assert all(checks.values()), (seed, checks)


class TestTraceLogger:
    def _run_network(self, bus_logger_path=None):
        net = SensorNetwork(Topology.line(3, spacing=15.0), seed=4)
        logger = TraceLogger(net.trace, path=bus_logger_path)
        sub = AttributeVector.builder().eq(Key.TYPE, "t").build()
        net.api(0).subscribe(sub, lambda a, m: None)
        pub = net.api(2).publish(
            AttributeVector.builder().actual(Key.TYPE, "t").build()
        )
        for i in range(5):
            net.sim.schedule(
                2.0 + i, net.api(2).send, pub,
                AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
            )
        net.run(until=15.0)
        logger.close()
        return logger

    def test_in_memory_logging(self):
        logger = self._run_network()
        assert logger.records_written > 0
        assert logger.records
        categories = {r.category for r in logger.records}
        assert "diffusion.tx" in categories

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        logger = self._run_network(bus_logger_path=path)
        records = load_trace(path)
        assert len(records) == logger.records_written
        assert records[0].time <= records[-1].time

    def test_summary_statistics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._run_network(bus_logger_path=path)
        summary = summarize_trace(load_trace(path))
        assert summary.record_count > 0
        assert summary.duration > 0
        assert summary.by_category.get("diffusion.tx", 0) > 0
        # Every node transmitted something (interests at least).
        assert set(summary.tx_bytes_by_node) == {0, 1, 2}

    def test_bytes_payload_serialized(self, tmp_path):
        bus = TraceBus()
        path = tmp_path / "trace.jsonl"
        logger = TraceLogger(bus, path=path)
        bus.emit(1.0, "custom", node=1, blob=b"\x01\x02", obj=object())
        logger.close()
        records = load_trace(path)
        assert records[0].data["blob"] == "0102"
        assert "object" in records[0].data["obj"]

    def test_nested_containers_round_trip(self, tmp_path):
        bus = TraceBus()
        path = tmp_path / "trace.jsonl"
        with TraceLogger(bus, path=path):
            bus.emit(
                1.0, "custom", node=1,
                sites=[{"site": "a", "count": 2}, {"site": "b", "count": 1}],
                nested={"inner": {"values": (1, 2, 3)}, "blob": b"\xff"},
            )
        record = load_trace(path)[0]
        # Containers serialize recursively, not as one big repr string.
        assert record.data["sites"] == [
            {"site": "a", "count": 2},
            {"site": "b", "count": 1},
        ]
        assert record.data["nested"]["inner"]["values"] == [1, 2, 3]
        assert record.data["nested"]["blob"] == "ff"

    def test_context_manager_closes_and_unsubscribes(self, tmp_path):
        bus = TraceBus()
        path = tmp_path / "trace.jsonl"
        with TraceLogger(bus, path=path) as logger:
            bus.emit(1.0, "custom", node=1)
        # After close the logger is off the bus: later emits are not
        # recorded and the file is flushed with what was written.
        bus.emit(2.0, "custom", node=1)
        assert logger.records_written == 1
        assert len(load_trace(path)) == 1

    def test_close_is_idempotent(self):
        bus = TraceBus()
        logger = TraceLogger(bus)
        logger.close()
        logger.close()

    def test_load_trace_tolerates_truncated_final_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"t": 1.0, "cat": "tx", "node": 1, "data": {}}\n'
            '{"t": 2.0, "cat": "rx", "no'  # writer died mid-record
        )
        records = load_trace(path)
        assert len(records) == 1
        assert records[0].category == "tx"

    def test_load_trace_rejects_malformed_middle_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"t": 1.0, "cat": "tx", "node": 1, "data": {}}\n'
            "not json at all\n"
            '{"t": 3.0, "cat": "rx", "node": 2, "data": {}}\n'
        )
        with pytest.raises(ValueError):
            load_trace(path)

    def test_load_trace_ignores_trailing_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"t": 1.0, "cat": "tx", "node": 1, "data": {}}\n\n\n'
        )
        assert len(load_trace(path)) == 1


class TestSummarizeEdgeCases:
    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary.record_count == 0
        assert summary.duration == 0.0
        assert summary.by_category == {}
        assert summary.tx_bytes_by_node == {}

    def test_unknown_categories_counted_not_fatal(self):
        from repro.sim import TraceRecord

        records = [
            TraceRecord(time=0.5, category="exotic.event", node=7, data={}),
            TraceRecord(time=1.5, category="exotic.event", node=7, data={}),
        ]
        summary = summarize_trace(records)
        assert summary.by_category == {"exotic.event": 2}
        assert summary.duration == 1.0

    def test_campaign_summary_without_end_record(self):
        from repro.analysis.tracelog import summarize_campaign
        from repro.sim import TraceRecord

        records = [
            TraceRecord(time=0.0, category="campaign.begin", node=None,
                        data={"total": 3}),
            TraceRecord(time=1.0, category="campaign.trial", node=None,
                        data={"status": "done", "index": 0, "elapsed": 1.0}),
            TraceRecord(time=2.0, category="campaign.trial", node=None,
                        data={"status": "failed", "index": 1}),
            # No campaign.end: the run was interrupted before finishing.
        ]
        summary = summarize_campaign(records)
        assert summary.trials == 3
        assert summary.done == 1
        assert summary.failed == 1
        assert summary.executed == 2
        assert summary.wall_time == 0.0
        assert not summary.interrupted

    def test_campaign_summary_empty(self):
        from repro.analysis.tracelog import summarize_campaign

        summary = summarize_campaign([])
        assert summary.trials == 0
        assert summary.executed == 0
