"""Tests for the custody layer: store policy, agent retry schedule,
and the custody-conservation invariant monitor."""

import pytest

from repro.core import DiffusionConfig
from repro.dtn import CustodyAgent, CustodyStore, DtnConfig
from repro.dtn.custody import CustodyEntry
from repro.faults import MonitorSuite
from repro.radio import Topology
from repro.sim import TraceBus
from repro.sim.rng import make_rng
from repro.testbed import SensorNetwork


def collecting_bus():
    bus = TraceBus()
    records = []
    for category in (
        "custody.accept", "custody.transfer", "custody.expire",
        "custody.refuse", "path.drop",
    ):
        bus.subscribe(category, records.append)
    return bus, records


def make_store(**config):
    bus, records = collecting_bus()
    store = CustodyStore(7, bus, DtnConfig(**config))
    return store, records


class TestCustodyStore:
    def test_accept_holds_and_duplicate_refused(self):
        store, records = make_store()
        entry = store.accept("obj", 3, 10, b"xyz", 1.0, trace="1.1")
        assert entry is not None and store.holds(("obj", 3))
        assert store.accept("obj", 3, 10, b"xyz", 2.0, trace="1.2") is None
        assert store.accepted == 1
        assert [r.category for r in records] == ["custody.accept"]

    def test_release_emits_transfer(self):
        store, records = make_store()
        store.accept("obj", 0, 4, b"a", 1.0, trace="1.1")
        released = store.release(("obj", 0), 5.0, to=9, delivered=True)
        assert released is not None and not store.holds(("obj", 0))
        assert store.transferred == 1
        transfer = [r for r in records if r.category == "custody.transfer"]
        assert len(transfer) == 1
        assert transfer[0].data["to"] == 9
        assert transfer[0].data["delivered"] is True

    def test_capacity_evicts_oldest_with_explicit_expiry(self):
        store, records = make_store(capacity=2)
        store.accept("obj", 0, 4, b"a", 1.0, trace="1.1")
        store.accept("obj", 1, 4, b"b", 2.0, trace="1.2")
        store.accept("obj", 2, 4, b"c", 3.0, trace="1.3")
        assert len(store) == 2
        assert not store.holds(("obj", 0))  # oldest promise evicted
        assert store.holds(("obj", 2))
        expire = [r for r in records if r.category == "custody.expire"]
        assert len(expire) == 1
        assert expire[0].data["reason"] == "capacity"
        # Terminal loss joins the per-layer drop attribution.
        drops = [r for r in records if r.category == "path.drop"]
        assert drops and drops[0].data["reason"] == "custody.expire-capacity"
        assert drops[0].data["layer"] == "custody"

    def test_age_sweep(self):
        store, records = make_store(max_age=10.0)
        store.accept("obj", 0, 4, b"a", 0.0, trace="1.1")
        store.accept("obj", 1, 4, b"b", 5.0, trace="1.2")
        stale = store.sweep(11.0)
        assert stale == [("obj", 0)]
        assert store.holds(("obj", 1))
        expire = [r for r in records if r.category == "custody.expire"]
        assert expire[0].data["reason"] == "age"

    def test_retry_exhaustion_expiry(self):
        store, records = make_store()
        store.accept("obj", 0, 4, b"a", 0.0, trace="1.1")
        store.expire_retries(("obj", 0), 9.0)
        expire = [r for r in records if r.category == "custody.expire"]
        assert expire[0].data["reason"] == "retries"
        assert store.expired == 1

    def test_energy_budget_refuses_new_custody(self):
        bus, records = collecting_bus()
        spent = {"j": 0.0}
        store = CustodyStore(
            7, bus, DtnConfig(energy_budget=1.0),
            energy_spent=lambda: spent["j"],
        )
        assert store.accept("obj", 0, 4, b"a", 0.0, trace="1.1") is not None
        spent["j"] = 2.0
        assert store.accept("obj", 1, 4, b"b", 1.0, trace="1.2") is None
        assert store.refused_energy == 1
        refusals = [r for r in records if r.category == "custody.refuse"]
        assert refusals and refusals[0].data["reason"] == "energy"
        # The promise already made is kept.
        assert store.holds(("obj", 0))

    def test_depth_high_water(self):
        store, _ = make_store()
        for i in range(5):
            store.accept("obj", i, 8, b"x", float(i), trace=f"1.{i}")
        store.release(("obj", 0), 6.0)
        assert store.depth_high_water == 5
        assert len(store) == 4


def small_network():
    topo = Topology()
    for i in range(3):
        topo.add_node(i, i * 12.0, 0.0)
    return SensorNetwork(
        topo, seed=3,
        config=DiffusionConfig(
            interest_interval=10.0, interest_jitter=0.5,
            gradient_timeout=25.0, exploratory_interval=8.0,
        ),
    )


class TestCustodyAgent:
    def test_disabled_agent_installs_no_filter(self):
        net = small_network()
        agent = CustodyAgent(
            net.node(1), rng=make_rng(3, "dtn:agent:1"),
            config=DtnConfig(enabled=False),
        )
        assert agent.handle is None

    def test_retry_schedule_is_seed_deterministic(self):
        delays = []
        for _ in range(2):
            net = small_network()
            agent = CustodyAgent(
                net.node(1), rng=make_rng(3, "dtn:agent:1")
            )
            delays.append([agent._retry_delay(n) for n in range(6)])
            agent.detach()
        assert delays[0] == delays[1]
        # Exponential with a ceiling: non-decreasing base terms.
        bases = [
            min(
                agent.config.retry_max,
                agent.config.retry_base * agent.config.retry_factor ** n,
            )
            for n in range(6)
        ]
        for delay, base in zip(delays[0], bases):
            assert base <= delay <= base * (1 + agent.config.retry_jitter)

    def test_detach_cancels_timers_and_removes_filter(self):
        net = small_network()
        agent = CustodyAgent(net.node(1), rng=make_rng(3, "dtn:agent:1"))
        agent.store.accept("obj", 0, 4, b"a", 0.0, trace="1.1")
        agent._schedule_retry(("obj", 0), attempts=0)
        assert agent._retry
        agent.detach()
        assert not agent._retry
        assert agent.handle is None


class TestCustodyConservationMonitor:
    def emit(self, net, category, node=1, obj="obj", index=0, **extra):
        net.trace.emit(
            net.sim.now, category, node=node, object=obj, index=index,
            trace="1.1", **extra,
        )

    def test_accept_then_transfer_is_clean(self):
        net = small_network()
        suite = MonitorSuite(net)
        self.emit(net, "custody.accept")
        self.emit(net, "custody.transfer")
        assert suite.ok
        suite.detach()

    def test_release_without_accept_is_a_violation(self):
        net = small_network()
        suite = MonitorSuite(net)
        self.emit(net, "custody.expire")
        assert not suite.ok
        violation = suite.violations[0]
        assert violation.invariant == "custody-conservation"
        assert violation.detail["detail_kind"] == "release-without-accept"
        suite.detach()

    def test_double_accept_is_a_violation(self):
        net = small_network()
        suite = MonitorSuite(net)
        self.emit(net, "custody.accept")
        self.emit(net, "custody.accept")
        assert not suite.ok
        assert suite.violations[0].detail["event"] == "double-accept"
        suite.detach()

    def test_ghost_entry_caught_by_probe(self):
        net = small_network()
        suite = MonitorSuite(net)
        agent = CustodyAgent(net.node(1), rng=make_rng(3, "dtn:agent:1"))
        suite.watch_custody(agent)
        # An entry that never went through accept(): no bus event.
        agent.store._entries[("obj", 0)] = CustodyEntry(
            object_id="obj", index=0, total=4, payload=b"a",
            accepted_at=0.0, trace="1.1",
        )
        suite.check()
        assert not suite.ok
        assert suite.violations[0].detail["detail_kind"] == "ghost-entry"
        suite.detach()

    def test_silent_drop_caught_by_probe(self):
        net = small_network()
        suite = MonitorSuite(net)
        agent = CustodyAgent(net.node(1), rng=make_rng(3, "dtn:agent:1"))
        suite.watch_custody(agent)
        agent.store.accept("obj", 0, 4, b"a", 0.0, trace="1.1")
        del agent.store._entries[("obj", 0)]  # vanish without an event
        suite.check()
        assert not suite.ok
        assert suite.violations[0].detail["detail_kind"] == "silent-drop"
        suite.detach()

    def test_store_lifecycle_through_real_bus_is_clean(self):
        net = small_network()
        suite = MonitorSuite(net)
        agent = CustodyAgent(net.node(1), rng=make_rng(3, "dtn:agent:1"))
        suite.watch_custody(agent)
        agent.store.accept("obj", 0, 4, b"a", 0.0, trace="1.1")
        agent.store.accept("obj", 1, 4, b"b", 0.0, trace="1.2")
        suite.check()
        agent.store.release(("obj", 0), 1.0, to=2)
        agent.store.expire_retries(("obj", 1), 2.0)
        suite.check()
        assert suite.ok
        suite.detach()
