"""Tests for one-way/two-way matching, including the paper's Figure 10 sets."""

import pytest

from repro.naming import (
    Attribute,
    AttributeVector,
    MatchStats,
    Operator,
    one_way_match,
    one_way_match_segregated,
    two_way_match,
)
from repro.naming.keys import ClassValue, Key


def figure10_interest() -> AttributeVector:
    """Set A from Figure 10 of the paper (8 attributes)."""
    return (
        AttributeVector.builder()
        .eq(Key.CLASS, int(ClassValue.INTEREST))
        .eq(Key.TASK, "detectAnimal")
        .gt(Key.CONFIDENCE, 50.0)
        .ge(Key.LATITUDE, 10.0)
        .le(Key.LATITUDE, 100.0)
        .ge(Key.LONGITUDE, 5.0)
        .le(Key.LONGITUDE, 95.0)
        .actual(Key.TARGET, "4-leg")
        .build()
    )


def figure10_data() -> AttributeVector:
    """Set B from Figure 10 of the paper (6 attributes)."""
    return (
        AttributeVector.builder()
        .actual(Key.CLASS, int(ClassValue.DATA))
        .actual(Key.TASK, "detectAnimal")
        .actual(Key.CONFIDENCE, 90.0)
        .actual(Key.LATITUDE, 20.0)
        .actual(Key.LONGITUDE, 80.0)
        .actual(Key.TARGET, "4-leg")
        .build()
    )


class TestFigure10:
    """The exact attribute sets the paper uses in Section 6.3."""

    def test_interest_formals_satisfied_by_data(self):
        a = [x for x in figure10_interest() if x.key != Key.CLASS]
        b = list(figure10_data())
        assert one_way_match(a, b)

    def test_full_interest_fails_on_class(self):
        # 'class EQ interest' is not satisfied by 'class IS data'; the
        # diffusion core strips/handles the class attribute before
        # gradient matching.
        assert not one_way_match(list(figure10_interest()), list(figure10_data()))

    def test_confidence_mismatch_fails(self):
        a = [x for x in figure10_interest() if x.key != Key.CLASS]
        bad = figure10_data().replace_actual(Key.CONFIDENCE, 10.0)
        assert not one_way_match(a, list(bad))

    def test_out_of_region_fails(self):
        a = [x for x in figure10_interest() if x.key != Key.CLASS]
        bad = figure10_data().replace_actual(Key.LATITUDE, 300.0)
        assert not one_way_match(a, list(bad))


class TestOneWayMatch:
    def test_empty_formals_always_match(self):
        b = [Attribute.int32(Key.SEQUENCE, Operator.IS, 1)]
        assert one_way_match([], b)
        actual_only = [Attribute.int32(Key.SEQUENCE, Operator.IS, 5)]
        assert one_way_match(actual_only, b)

    def test_formal_without_matching_actual_fails(self):
        a = [Attribute.float64(Key.CONFIDENCE, Operator.GT, 0.5)]
        assert not one_way_match(a, [])

    def test_formal_ignores_formals_in_b(self):
        # "confidence GT 0.5" must have an actual; "confidence LT 0.7"
        # in B does not satisfy it (paper Section 3.2).
        a = [Attribute.float64(Key.CONFIDENCE, Operator.GT, 0.5)]
        b = [Attribute.float64(Key.CONFIDENCE, Operator.LT, 0.7)]
        assert not one_way_match(a, b)

    def test_formal_ignores_gt_in_b(self):
        a = [Attribute.float64(Key.CONFIDENCE, Operator.GT, 0.5)]
        b = [Attribute.float64(Key.CONFIDENCE, Operator.GT, 0.7)]
        assert not one_way_match(a, b)

    def test_multiple_formals_are_anded(self):
        a = [
            Attribute.float64(Key.X_COORD, Operator.GE, -100.0),
            Attribute.float64(Key.X_COORD, Operator.LE, 200.0),
        ]
        inside = [Attribute.float64(Key.X_COORD, Operator.IS, 125.0)]
        outside = [Attribute.float64(Key.X_COORD, Operator.IS, 300.0)]
        assert one_way_match(a, inside)
        assert not one_way_match(a, outside)

    def test_any_satisfying_actual_suffices(self):
        a = [Attribute.int32(Key.SEQUENCE, Operator.EQ, 2)]
        b = [
            Attribute.int32(Key.SEQUENCE, Operator.IS, 1),
            Attribute.int32(Key.SEQUENCE, Operator.IS, 2),
        ]
        assert one_way_match(a, b)

    def test_stats_counters(self):
        stats = MatchStats()
        a = [x for x in figure10_interest() if x.key != Key.CLASS]
        one_way_match(a, list(figure10_data()), stats)
        assert stats.formals_tested == 6  # 7 formals minus the class EQ
        assert stats.comparisons >= 6


class TestSegregatedMatch:
    """The optimized matcher must agree with the reference everywhere."""

    CASES = [
        ([], []),
        (
            [Attribute.float64(Key.CONFIDENCE, Operator.GT, 0.5)],
            [Attribute.float64(Key.CONFIDENCE, Operator.IS, 0.7)],
        ),
        (
            [Attribute.float64(Key.CONFIDENCE, Operator.GT, 0.5)],
            [Attribute.float64(Key.CONFIDENCE, Operator.IS, 0.3)],
        ),
        (
            [Attribute.float64(Key.CONFIDENCE, Operator.GT, 0.5)],
            [Attribute.float64(Key.CONFIDENCE, Operator.LT, 0.7)],
        ),
    ]

    @pytest.mark.parametrize("a,b", CASES)
    def test_agreement(self, a, b):
        assert one_way_match_segregated(a, b) == one_way_match(a, b)

    def test_agreement_on_figure10(self):
        a = [x for x in figure10_interest() if x.key != Key.CLASS]
        b = list(figure10_data())
        assert one_way_match_segregated(a, b) == one_way_match(a, b) is True

    def test_fewer_comparisons_on_long_sets(self):
        a = [Attribute.int32(Key.SEQUENCE, Operator.EQ, 99)]
        b = [Attribute.int32(Key.PAYLOAD, Operator.IS, i) for i in range(50)]
        b.append(Attribute.int32(Key.SEQUENCE, Operator.IS, 99))
        ref, seg = MatchStats(), MatchStats()
        assert one_way_match(a, b, ref)
        assert one_way_match_segregated(a, b, seg)
        assert seg.comparisons <= ref.comparisons


class TestTwoWayMatch:
    def test_subscription_matches_publication(self):
        # A publish/subscribe pair per Section 4.1: publication attrs
        # must match the subscription in both directions.
        sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, "light")
            .actual(Key.TASK, "monitor")
            .eq_any(Key.SEQUENCE)
            .build()
        )
        pub = (
            AttributeVector.builder()
            .actual(Key.TYPE, "light")
            .actual(Key.SEQUENCE, 0)
            .eq(Key.TASK, "monitor")
            .build()
        )
        assert two_way_match(list(sub), list(pub))

    def test_two_way_fails_if_either_direction_fails(self):
        a = [
            Attribute.string(Key.TYPE, Operator.EQ, "light"),
            Attribute.string(Key.TASK, Operator.IS, "t"),
        ]
        b = [
            Attribute.string(Key.TYPE, Operator.IS, "light"),
            Attribute.string(Key.TASK, Operator.EQ, "other"),
        ]
        assert one_way_match(a, b)
        assert not two_way_match(a, b)

    def test_symmetric(self):
        a = [Attribute.string(Key.TYPE, Operator.EQ, "light"),
             Attribute.string(Key.TYPE, Operator.IS, "light")]
        b = [Attribute.string(Key.TYPE, Operator.IS, "light"),
             Attribute.string(Key.TYPE, Operator.EQ, "light")]
        assert two_way_match(a, b) == two_way_match(b, a) is True
