"""Tests for per-node clocks and RBS time synchronization."""

import random

import pytest

from repro.apps.timesync import (
    SyncCoordinator,
    SyncParticipant,
    TimeBeacon,
)
from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.sim import Simulator
from repro.sim.clock import NodeClock
from repro.testbed import IdealNetwork


class TestNodeClock:
    def test_offset(self):
        clock = NodeClock(offset=2.5)
        assert clock.exact_local_time(10.0) == pytest.approx(12.5)
        assert clock.true_time(12.5) == pytest.approx(10.0)

    def test_drift(self):
        clock = NodeClock(drift_ppm=100.0)  # 100 ppm fast
        assert clock.exact_local_time(10_000.0) == pytest.approx(10_001.0)

    def test_adjust_steps_offset(self):
        clock = NodeClock(offset=1.0)
        clock.adjust(-1.0)
        assert clock.exact_local_time(5.0) == pytest.approx(5.0)
        assert clock.adjustments == 1

    def test_read_jitter_statistics(self):
        clock = NodeClock(read_jitter=0.01, rng=random.Random(1))
        reads = [clock.local_time(100.0) for _ in range(200)]
        assert min(reads) != max(reads)
        mean = sum(reads) / len(reads)
        assert mean == pytest.approx(100.0, abs=0.005)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            NodeClock(read_jitter=-1.0)

    def test_error_vs(self):
        a = NodeClock(offset=0.10)
        b = NodeClock(offset=-0.05)
        assert a.error_vs(b, 0.0) == pytest.approx(0.15)

    def test_default_clocks_have_independent_jitter_streams(self):
        # Regression: defaults used to share random.Random(0), so every
        # clock read the same jitter sequence.
        a = NodeClock(read_jitter=0.01)
        b = NodeClock(read_jitter=0.01)
        reads_a = [a.local_time(100.0) for _ in range(8)]
        reads_b = [b.local_time(100.0) for _ in range(8)]
        assert reads_a != reads_b

    def test_seed_gives_reproducible_jitter(self):
        a = NodeClock(read_jitter=0.01, seed=7)
        b = NodeClock(read_jitter=0.01, seed=7)
        c = NodeClock(read_jitter=0.01, seed=8)
        reads = lambda clock: [clock.local_time(1.0) for _ in range(8)]
        assert reads(a) == reads(b)
        assert reads(a) != reads(c)


def build_rbs_network(offsets, drifts=None, jitter=0.0):
    """Star: beacon at hub 0; participants 1..n; coordinator at 1."""
    n = len(offsets)
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.001)
    config = DiffusionConfig(reinforcement_jitter=0.05)
    apis, clocks = {}, {}
    for i in range(n + 1):
        node = DiffusionNode(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(node)
    for i in range(1, n + 1):
        net.connect(0, i)
        # Participants can hear each other's observation reports via
        # the hub; connect them pairwise through node 0 only.
    clocks = {
        i + 1: NodeClock(
            offset=offsets[i],
            drift_ppm=(drifts[i] if drifts else 0.0),
            read_jitter=jitter,
            rng=random.Random(100 + i),
        )
        for i in range(n)
    }
    beacon = TimeBeacon(apis[0], interval=5.0)
    participants = {
        i: SyncParticipant(apis[i], clocks[i]) for i in clocks
    }
    coordinator = SyncCoordinator(apis[1])
    return sim, clocks, beacon, participants, coordinator


class TestRbs:
    def test_offsets_estimated_from_shared_beacons(self):
        sim, clocks, beacon, participants, coordinator = build_rbs_network(
            offsets=[0.0, 0.120, -0.080]
        )
        sim.run(until=60.0)
        assert coordinator.reports_received > 0
        assert set(coordinator.participants()) == {1, 2, 3}
        assert coordinator.shared_beacons(2, 1) >= 5
        # Node 2 is 120 ms ahead of node 1; node 3 is 80 ms behind.
        assert coordinator.offset_estimate(2, 1) == pytest.approx(0.120, abs=1e-6)
        assert coordinator.offset_estimate(3, 1) == pytest.approx(-0.080, abs=1e-6)

    def test_sender_delays_cancel(self):
        """RBS's defining property: beacon send-side timing is
        irrelevant — only receiver clocks matter.  The beacon's own
        schedule jitter does not affect the estimates."""
        sim, clocks, beacon, participants, coordinator = build_rbs_network(
            offsets=[0.5, -0.3]
        )
        sim.run(until=60.0)
        assert coordinator.offset_estimate(2, 1) == pytest.approx(-0.8, abs=1e-6)

    def test_corrections_synchronize_clocks(self):
        sim, clocks, beacon, participants, coordinator = build_rbs_network(
            offsets=[0.2, -0.15, 0.07]
        )
        sim.run(until=60.0)
        corrections = coordinator.apply_corrections(clocks, reference=1)
        assert set(corrections) == {2, 3}
        now = sim.now
        for node in (2, 3):
            assert clocks[node].error_vs(clocks[1], now) < 1e-6

    def test_jitter_bounds_residual_error(self):
        sim, clocks, beacon, participants, coordinator = build_rbs_network(
            offsets=[0.2, -0.15], jitter=0.002
        )
        sim.run(until=300.0)  # many beacons: averaging beats jitter
        coordinator.apply_corrections(clocks, reference=1)
        residual = clocks[2].error_vs(clocks[1], sim.now)
        # Residual ~ jitter / sqrt(2 * beacons); comfortably < jitter.
        assert residual < 0.002

    def test_unknown_pair_returns_none(self):
        sim, clocks, beacon, participants, coordinator = build_rbs_network(
            offsets=[0.0]
        )
        sim.run(until=20.0)
        assert coordinator.offset_estimate(9, 1) is None

    def test_drifting_clocks_estimate_tracks_mean_offset(self):
        sim, clocks, beacon, participants, coordinator = build_rbs_network(
            offsets=[0.0, 0.0], drifts=[0.0, 50.0]  # node 2 runs fast
        )
        sim.run(until=100.0)
        estimate = coordinator.offset_estimate(2, 1)
        # 50 ppm over ~100 s accumulates ~2.5 ms mean offset.
        assert estimate is not None
        assert 0.0 < estimate < 0.01
