"""Integration tests for the diffusion protocol over an ideal transport.

These exercise the Figure 1 phases: interest propagation, gradient
setup, exploratory data, reinforcement, and delivery on reinforced
paths — without MAC/radio noise.
"""

import pytest

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting, MessageType
from repro.naming import AttributeVector
from repro.naming.keys import ClassValue, Key
from repro.sim import Simulator
from repro.testbed import IdealNetwork


def build_line(n, config=None, loss=0.0, delay=0.01):
    """A chain 0-1-2-...-n-1 of diffusion nodes on an ideal network."""
    sim = Simulator()
    net = IdealNetwork(sim, delay=delay, loss=loss)
    apis = {}
    nodes = {}
    for i in range(n):
        transport = net.add_node(i)
        node = DiffusionNode(sim, i, transport, config=config or DiffusionConfig())
        nodes[i] = node
        apis[i] = DiffusionRouting(node)
    for i in range(n - 1):
        net.connect(i, i + 1)
    return sim, net, nodes, apis


def light_subscription():
    return (
        AttributeVector.builder()
        .eq(Key.TYPE, "light")
        .actual(Key.INTERVAL, 1000)
        .build()
    )


def light_publication():
    return AttributeVector.builder().actual(Key.TYPE, "light").build()


def light_sample(seq):
    return AttributeVector.builder().actual(Key.SEQUENCE, seq).build()


class TestInterestPropagation:
    def test_interest_floods_whole_network(self):
        sim, net, nodes, apis = build_line(5)
        apis[0].subscribe(light_subscription(), lambda attrs, msg: None)
        sim.run(until=1.0)
        for i in range(1, 5):
            assert len(nodes[i].gradients) == 1

    def test_gradients_point_toward_sink(self):
        sim, net, nodes, apis = build_line(4)
        apis[0].subscribe(light_subscription(), lambda attrs, msg: None)
        sim.run(until=1.0)
        # Each node's gradient neighbor set contains the hop toward 0.
        for i in range(1, 4):
            entry = nodes[i].gradients.entries()[0]
            assert i - 1 in entry.active_gradient_neighbors(sim.now)

    def test_interest_refresh_keeps_gradients_alive(self):
        config = DiffusionConfig(interest_interval=10.0, gradient_timeout=25.0,
                                 interest_jitter=0.1)
        sim, net, nodes, apis = build_line(3, config=config)
        apis[0].subscribe(light_subscription(), lambda attrs, msg: None)
        sim.run(until=100.0)
        entry = nodes[2].gradients.entries()[0]
        assert entry.active_gradient_neighbors(sim.now) == [1]

    def test_unsubscribe_stops_refresh(self):
        config = DiffusionConfig(interest_interval=10.0, gradient_timeout=25.0,
                                 interest_jitter=0.1)
        sim, net, nodes, apis = build_line(3, config=config)
        handle = apis[0].subscribe(light_subscription(), lambda a, m: None)
        sim.run(until=5.0)
        assert apis[0].unsubscribe(handle)
        sim.run(until=100.0)
        entry_list = nodes[2].gradients.entries()
        # Gradients have expired (and likely been swept).
        assert not entry_list or not entry_list[0].active_gradient_neighbors(sim.now)

    def test_duplicate_interests_suppressed(self):
        sim, net, nodes, apis = build_line(3)
        apis[0].subscribe(light_subscription(), lambda a, m: None)
        sim.run(until=5.0)
        # Each node transmits each flooded interest exactly once.
        for i in range(3):
            assert nodes[i].stats.messages_by_type[MessageType.INTEREST] == 1

    def test_source_sees_interest_via_interest_subscription(self):
        sim, net, nodes, apis = build_line(3)
        seen = []
        watch = (
            AttributeVector.builder()
            .eq(Key.CLASS, int(ClassValue.INTEREST))
            .actual(Key.TYPE, "light")
            .build()
        )
        apis[2].subscribe(watch, lambda attrs, msg: seen.append(attrs))
        apis[0].subscribe(light_subscription(), lambda a, m: None)
        sim.run(until=1.0)
        assert len(seen) == 1


class TestDataDelivery:
    def test_exploratory_data_reaches_sink(self):
        sim, net, nodes, apis = build_line(4)
        received = []
        apis[0].subscribe(light_subscription(), lambda attrs, msg: received.append(attrs))
        pub = apis[3].publish(light_publication())
        sim.schedule(1.0, apis[3].send, pub, light_sample(0))
        sim.run(until=2.0)
        assert len(received) == 1
        assert received[0].value_of(Key.SEQUENCE) == 0

    def test_data_without_subscription_does_not_leave_node(self):
        sim, net, nodes, apis = build_line(3)
        pub = apis[2].publish(light_publication())
        sim.schedule(1.0, apis[2].send, pub, light_sample(0))
        sim.run(until=2.0)
        assert nodes[2].stats.messages_sent == 0
        assert nodes[2].stats.messages_dropped_no_route == 1

    def test_reinforced_path_carries_plain_data(self):
        config = DiffusionConfig(reinforcement_jitter=0.05)
        sim, net, nodes, apis = build_line(4, config=config)
        received = []
        apis[0].subscribe(light_subscription(), lambda attrs, msg: received.append(attrs))
        pub = apis[3].publish(light_publication())
        for seq in range(5):
            sim.schedule(1.0 + seq, apis[3].send, pub, light_sample(seq))
        sim.run(until=10.0)
        assert len(received) == 5
        # Messages 1..4 are plain data and travel unicast on the
        # reinforced path: each relay transmits them as DATA.
        assert nodes[1].stats.messages_by_type[MessageType.DATA] == 4
        assert nodes[2].stats.messages_by_type[MessageType.DATA] == 4

    def test_reinforcement_messages_flow_upstream(self):
        sim, net, nodes, apis = build_line(4)
        apis[0].subscribe(light_subscription(), lambda a, m: None)
        pub = apis[3].publish(light_publication())
        sim.schedule(1.0, apis[3].send, pub, light_sample(0))
        sim.run(until=3.0)
        for i in (0, 1, 2):
            assert (
                nodes[i].stats.messages_by_type[MessageType.POSITIVE_REINFORCEMENT]
                >= 1
            )

    def test_plain_data_dropped_without_reinforcement(self):
        config = DiffusionConfig(enable_reinforcement=False)
        sim, net, nodes, apis = build_line(4, config=config)
        received = []
        apis[0].subscribe(light_subscription(), lambda attrs, msg: received.append(attrs))
        pub = apis[3].publish(light_publication())
        for seq in range(3):
            sim.schedule(1.0 + seq, apis[3].send, pub, light_sample(seq))
        sim.run(until=10.0)
        # Flooding ablation still delivers everything (data floods).
        assert len(received) == 3
        assert (
            nodes[1].stats.messages_by_type[MessageType.POSITIVE_REINFORCEMENT] == 0
        )

    def test_exploratory_cadence(self):
        config = DiffusionConfig(exploratory_every=3)
        sim, net, nodes, apis = build_line(2, config=config)
        apis[0].subscribe(light_subscription(), lambda a, m: None)
        pub = apis[1].publish(light_publication())
        for seq in range(6):
            sim.schedule(1.0 + seq, apis[1].send, pub, light_sample(seq))
        sim.run(until=10.0)
        stats = nodes[1].stats
        assert stats.messages_by_type[MessageType.EXPLORATORY_DATA] == 2  # 0 and 3
        assert stats.messages_by_type[MessageType.DATA] == 4

    def test_sink_and_source_on_same_node(self):
        sim, net, nodes, apis = build_line(2)
        received = []
        apis[0].subscribe(light_subscription(), lambda attrs, msg: received.append(attrs))
        pub = apis[0].publish(light_publication())
        sim.schedule(0.5, apis[0].send, pub, light_sample(7))
        sim.run(until=1.0)
        assert len(received) == 1

    def test_send_with_unknown_handle_returns_none(self):
        sim, net, nodes, apis = build_line(2)
        assert nodes[0].send(9999, light_sample(0)) is None

    def test_multiple_sinks_both_receive(self):
        sim = Simulator()
        net = IdealNetwork(sim, delay=0.01)
        nodes, apis = {}, {}
        # Y topology: sinks at 0 and 4, source at 2.
        for i in range(5):
            transport = net.add_node(i)
            nodes[i] = DiffusionNode(sim, i, transport)
            apis[i] = DiffusionRouting(nodes[i])
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            net.connect(a, b)
        rx0, rx4 = [], []
        apis[0].subscribe(light_subscription(), lambda a, m: rx0.append(a))
        apis[4].subscribe(light_subscription(), lambda a, m: rx4.append(a))
        pub = apis[2].publish(light_publication())
        for seq in range(3):
            sim.schedule(1.0 + seq, apis[2].send, pub, light_sample(seq))
        sim.run(until=10.0)
        assert len(rx0) == 3
        assert len(rx4) == 3


class TestLoopPrevention:
    def test_ring_topology_does_not_livelock(self):
        sim = Simulator()
        net = IdealNetwork(sim, delay=0.01)
        nodes, apis = {}, {}
        n = 6
        for i in range(n):
            transport = net.add_node(i)
            nodes[i] = DiffusionNode(sim, i, transport)
            apis[i] = DiffusionRouting(nodes[i])
        for i in range(n):
            net.connect(i, (i + 1) % n)
        received = []
        apis[0].subscribe(light_subscription(), lambda a, m: received.append(a))
        pub = apis[3].publish(light_publication())
        sim.schedule(1.0, apis[3].send, pub, light_sample(0))
        sim.run(until=30.0)
        assert len(received) == 1  # delivered once despite two paths
        # Each node forwarded the flooded exploratory message at most once.
        for i in range(n):
            assert nodes[i].stats.messages_by_type[MessageType.EXPLORATORY_DATA] <= 1

    def test_sim_queue_quiesces(self):
        sim, net, nodes, apis = build_line(4)
        apis[0].subscribe(light_subscription(), lambda a, m: None)
        sim.run(until=10.0)
        # Only periodic timers (sweep + interest refresh) remain.
        assert sim.pending < 20


class TestPathRepair:
    def test_reroute_after_node_failure(self):
        # Diamond: 0 (sink) - {1, 2} - 3 (source); kill relay 1.
        sim = Simulator()
        net = IdealNetwork(sim, delay=0.01)
        nodes, apis = {}, {}
        for i in range(4):
            transport = net.add_node(i)
            config = DiffusionConfig(
                interest_interval=10.0,
                gradient_timeout=30.0,
                interest_jitter=0.1,
                exploratory_every=3,
                reinforced_timeout=20.0,
            )
            nodes[i] = DiffusionNode(sim, i, transport, config=config)
            apis[i] = DiffusionRouting(nodes[i])
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            net.connect(a, b)
        received = []
        apis[0].subscribe(light_subscription(), lambda a, m: received.append(a))
        pub = apis[3].publish(light_publication())
        for seq in range(40):
            sim.schedule(1.0 + seq, apis[3].send, pub, light_sample(seq))
        # Fail whichever relay carries the data at t=15.
        def kill_active_relay():
            d1 = nodes[1].stats.messages_by_type[MessageType.DATA]
            d2 = nodes[2].stats.messages_by_type[MessageType.DATA]
            victim = 1 if d1 >= d2 else 2
            nodes[victim].shutdown()
            net.disconnect(victim, 0)
            net.disconnect(victim, 3)
        sim.schedule(15.0, kill_active_relay)
        sim.run(until=60.0)
        # Data keeps arriving after the failure: exploratory messages
        # re-discover the surviving path and re-reinforce it.
        late = [a.value_of(Key.SEQUENCE) for a in received if a.value_of(Key.SEQUENCE) >= 25]
        assert len(late) >= 10


class TestNegativeReinforcement:
    def test_sink_switches_and_tears_down_old_path(self):
        # Diamond where path via 1 is faster initially, then we slow it
        # down by making its delay asymmetric via disconnect/reconnect.
        sim = Simulator()
        fast = IdealNetwork(sim, delay=0.01)
        nodes, apis = {}, {}
        config = DiffusionConfig(
            interest_interval=10.0,
            gradient_timeout=30.0,
            interest_jitter=0.1,
            exploratory_every=2,
            reinforced_timeout=15.0,
        )
        for i in range(4):
            transport = fast.add_node(i)
            nodes[i] = DiffusionNode(sim, i, transport, config=config)
            apis[i] = DiffusionRouting(nodes[i])
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            fast.connect(a, b)
        apis[0].subscribe(light_subscription(), lambda a, m: None)
        pub = apis[3].publish(light_publication())
        for seq in range(20):
            sim.schedule(1.0 + seq, apis[3].send, pub, light_sample(seq))
        sim.run(until=40.0)
        negs = sum(
            nodes[i].stats.messages_by_type[MessageType.NEGATIVE_REINFORCEMENT]
            for i in range(4)
        )
        # With two equal-cost paths and per-generation reinforcement the
        # sink occasionally switches preferred neighbors, emitting
        # negative reinforcements; at minimum the machinery never
        # delivers duplicates.
        assert nodes[0].stats.events_delivered == 20
        assert negs >= 0  # smoke: protocol ran without error
