"""Tests for RNG stream derivation and the trace bus."""

from repro.sim import SeedSequence, TraceBus, make_rng
from repro.sim.trace import TraceCollector


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(1, "mac")
        b = make_rng(1, "mac")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_labels_give_independent_streams(self):
        a = make_rng(1, "mac")
        b = make_rng(1, "radio")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = make_rng(1, "mac")
        b = make_rng(2, "mac")
        assert a.random() != b.random()

    def test_seed_sequence_memoizes(self):
        seq = SeedSequence(7)
        assert seq.stream("x") is seq.stream("x")

    def test_seed_sequence_child_independent(self):
        seq = SeedSequence(7)
        child_a = seq.child("node1")
        child_b = seq.child("node2")
        assert child_a.stream("mac").random() != child_b.stream("mac").random()

    def test_int_labels_accepted(self):
        seq = SeedSequence(7)
        assert seq.stream(3) is seq.stream("3")


class TestTraceBus:
    def test_emit_reaches_category_listener(self):
        bus = TraceBus()
        got = []
        bus.subscribe("tx", got.append)
        bus.emit(1.0, "tx", node=3, nbytes=112)
        assert len(got) == 1
        assert got[0].time == 1.0
        assert got[0].node == 3
        assert got[0].data["nbytes"] == 112

    def test_other_categories_not_delivered(self):
        bus = TraceBus()
        got = []
        bus.subscribe("tx", got.append)
        bus.emit(1.0, "rx", node=3)
        assert got == []

    def test_wildcard_listener_sees_everything(self):
        bus = TraceBus()
        got = []
        bus.subscribe("*", got.append)
        bus.emit(1.0, "tx")
        bus.emit(2.0, "rx")
        assert [r.category for r in got] == ["tx", "rx"]

    def test_unsubscribe(self):
        bus = TraceBus()
        got = []
        bus.subscribe("tx", got.append)
        bus.unsubscribe("tx", got.append)
        bus.emit(1.0, "tx")
        assert got == []

    def test_unsubscribe_missing_listener_is_noop(self):
        bus = TraceBus()
        bus.unsubscribe("tx", lambda r: None)

    def test_collector_filters_by_category(self):
        bus = TraceBus()
        collector = TraceCollector(bus)
        bus.emit(1.0, "tx")
        bus.emit(2.0, "rx")
        assert len(collector.records) == 2
        assert len(collector.by_category("tx")) == 1


class TestTraceCollectorLifecycle:
    def test_detach_stops_recording_but_keeps_records(self):
        bus = TraceBus()
        collector = TraceCollector(bus)
        bus.emit(1.0, "tx")
        assert collector.attached
        collector.detach()
        assert not collector.attached
        bus.emit(2.0, "tx")
        assert len(collector.records) == 1

    def test_detach_is_idempotent(self):
        bus = TraceBus()
        collector = TraceCollector(bus)
        collector.detach()
        collector.detach()
        assert not collector.attached

    def test_context_manager_detaches_on_exit(self):
        bus = TraceBus()
        with TraceCollector(bus) as collector:
            bus.emit(1.0, "tx")
            assert collector.attached
        assert not collector.attached
        bus.emit(2.0, "tx")
        assert len(collector.records) == 1

    def test_detached_collector_restores_fast_emit_path(self):
        bus = TraceBus()
        with TraceCollector(bus, category="tx"):
            pass
        # With the only listener gone, emit takes the cheap no-listener
        # exit again: the category's listener list must be empty.
        assert bus._listeners.get("tx") == []

    def test_category_scoped_collector(self):
        bus = TraceBus()
        with TraceCollector(bus, category="tx") as collector:
            bus.emit(1.0, "tx")
            bus.emit(2.0, "rx")
        assert [r.category for r in collector.records] == ["tx"]
