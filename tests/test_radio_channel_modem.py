"""Tests for the shared channel, collisions, and the modem."""

import pytest

from repro.radio import Channel, Modem, RadioParams, TablePropagation
from repro.sim import SeedSequence, Simulator


def make_net(links, n_nodes=3, params=None):
    sim = Simulator()
    channel = Channel(sim, TablePropagation(links), seeds=SeedSequence(1))
    modems = [
        Modem(sim, channel, node_id=i, params=params or RadioParams())
        for i in range(n_nodes)
    ]
    return sim, channel, modems


class Sink:
    def __init__(self, modem):
        self.received = []
        modem.receive_callback = self._on_receive

    def _on_receive(self, payload, src, nbytes, link_dst):
        self.received.append((payload, src, nbytes, link_dst))


class TestRadioParams:
    def test_fragment_airtime(self):
        params = RadioParams(bitrate_bps=13_000.0, fragment_payload=27,
                             fragment_overhead=5)
        assert params.fragment_airtime(27) == pytest.approx((32 * 8) / 13_000.0)

    def test_oversized_fragment_rejected(self):
        params = RadioParams()
        with pytest.raises(ValueError):
            params.fragment_airtime(28)


class TestChannelDelivery:
    def test_perfect_link_delivers(self):
        sim, channel, modems = make_net({(0, 1): 1.0})
        sink = Sink(modems[1])
        modems[0].transmit_fragment("hello", 20)
        sim.run()
        assert len(sink.received) == 1
        payload, src, nbytes, link_dst = sink.received[0]
        assert payload == "hello"
        assert src == 0
        assert nbytes == 20
        assert link_dst is None

    def test_zero_link_never_delivers(self):
        sim, channel, modems = make_net({(0, 1): 0.0})
        sink = Sink(modems[1])
        modems[0].transmit_fragment("hello", 20)
        sim.run()
        assert sink.received == []

    def test_lossy_link_statistics(self):
        losses = 0
        trials = 300
        sim, channel, modems = make_net({(0, 1): 0.5})
        sink = Sink(modems[1])
        for i in range(trials):
            sim.schedule(i * 1.0, modems[0].transmit_fragment, f"m{i}", 10)
        sim.run()
        delivered = len(sink.received)
        assert 0.35 * trials < delivered < 0.65 * trials

    def test_unicast_filtered_by_link_dst(self):
        sim, channel, modems = make_net({(0, 1): 1.0, (0, 2): 1.0})
        sink1, sink2 = Sink(modems[1]), Sink(modems[2])
        modems[0].transmit_fragment("to-1", 10, link_dst=1)
        sim.run()
        assert len(sink1.received) == 1
        assert sink2.received == []  # heard but filtered
        assert modems[2].fragments_received == 1  # energy was still spent

    def test_broadcast_reaches_all_in_range(self):
        sim, channel, modems = make_net({(0, 1): 1.0, (0, 2): 1.0})
        sink1, sink2 = Sink(modems[1]), Sink(modems[2])
        modems[0].transmit_fragment("bcast", 10)
        sim.run()
        assert len(sink1.received) == 1
        assert len(sink2.received) == 1

    def test_asymmetric_link_one_way(self):
        sim, channel, modems = make_net({(0, 1): 1.0})  # no (1, 0) entry
        sink0 = Sink(modems[0])
        modems[1].transmit_fragment("up", 10)
        sim.run()
        assert sink0.received == []


class TestCollisions:
    def test_overlapping_transmissions_collide(self):
        # 0 and 2 cannot hear each other (hidden terminals) but both
        # reach 1: simultaneous sends must corrupt both at 1.
        links = {(0, 1): 1.0, (2, 1): 1.0}
        sim, channel, modems = make_net(links)
        sink = Sink(modems[1])
        sim.schedule(0.0, modems[0].transmit_fragment, "a", 27)
        sim.schedule(0.001, modems[2].transmit_fragment, "b", 27)
        sim.run()
        assert sink.received == []
        assert channel.fragments_collided >= 2

    def test_non_overlapping_transmissions_ok(self):
        links = {(0, 1): 1.0, (2, 1): 1.0}
        sim, channel, modems = make_net(links)
        sink = Sink(modems[1])
        sim.schedule(0.0, modems[0].transmit_fragment, "a", 27)
        sim.schedule(1.0, modems[2].transmit_fragment, "b", 27)
        sim.run()
        assert len(sink.received) == 2

    def test_half_duplex_receiver_misses_while_transmitting(self):
        links = {(0, 1): 1.0, (1, 0): 1.0}
        sim, channel, modems = make_net(links, n_nodes=2)
        sink1 = Sink(modems[1])
        sim.schedule(0.0, modems[0].transmit_fragment, "a", 27)
        sim.schedule(0.001, modems[1].transmit_fragment, "b", 27)
        sim.run()
        assert sink1.received == []

    def test_modem_rejects_concurrent_transmit(self):
        sim, channel, modems = make_net({(0, 1): 1.0})
        modems[0].transmit_fragment("a", 27)
        with pytest.raises(RuntimeError):
            modems[0].transmit_fragment("b", 27)


class TestCarrierSense:
    def test_busy_during_audible_transmission(self):
        sim, channel, modems = make_net({(0, 1): 1.0})
        assert not channel.carrier_busy(1)
        modems[0].transmit_fragment("a", 27)
        assert channel.carrier_busy(1)
        sim.run()
        assert not channel.carrier_busy(1)

    def test_hidden_terminal_senses_idle(self):
        # 2 cannot hear 0, so it senses an idle channel mid-transmission.
        links = {(0, 1): 1.0, (2, 1): 1.0}
        sim, channel, modems = make_net(links)
        modems[0].transmit_fragment("a", 27)
        assert channel.carrier_busy(1)
        assert not channel.carrier_busy(2)
        sim.run()

    def test_weak_signal_below_threshold_not_sensed(self):
        links = {(0, 1): Channel.CARRIER_SENSE_THRESHOLD / 2}
        sim, channel, modems = make_net(links)
        modems[0].transmit_fragment("a", 27)
        assert not channel.carrier_busy(1)
        sim.run()


class TestModemStats:
    def test_tx_counters(self):
        sim, channel, modems = make_net({(0, 1): 1.0})
        modems[0].transmit_fragment("a", 20)
        sim.run()
        assert modems[0].fragments_sent == 1
        assert modems[0].bytes_sent == 20 + modems[0].params.fragment_overhead

    def test_on_done_callback(self):
        sim, channel, modems = make_net({(0, 1): 1.0})
        done = []
        modems[0].transmit_fragment("a", 20, on_done=lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1
        assert done[0] == pytest.approx(modems[0].params.fragment_airtime(20))

    def test_duplicate_attach_rejected(self):
        sim = Simulator()
        channel = Channel(sim, TablePropagation({}))
        Modem(sim, channel, node_id=5)
        with pytest.raises(ValueError):
            Modem(sim, channel, node_id=5)
