"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Simulator, SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_in_schedule_order():
    sim = Simulator()
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(5.0, fired.append, label)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_run_until_horizon_is_inclusive_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "at-horizon")
    sim.schedule(10.5, fired.append, "beyond")
    sim.run(until=10.0)
    assert fired == ["at-horizon"]
    assert sim.now == 10.0
    sim.run(until=11.0)
    assert fired == ["at-horizon", "beyond"]


def test_run_until_advances_clock_when_queue_empty():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.schedule(2.0, fired.append, "y")
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_schedule_from_within_event():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_zero_delay_allowed_negative_rejected():
    sim = Simulator()
    sim.schedule(0.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(7.0, fired.append, "abs")
    sim.run()
    assert fired == ["abs"]
    assert sim.now == 7.0


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_stop_halts_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, "never")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 2.0


def test_max_events_limit():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i), lambda: None)
    sim.run(max_events=4)
    assert sim.events_processed == 4


def test_pending_counts_uncancelled():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    e1.cancel()
    assert sim.pending == 1


def test_peek_time_skips_cancelled():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    assert sim.peek_time() == 2.0


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_no_profiler_by_default():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.profiler is None


def test_enable_profiler_is_idempotent():
    sim = Simulator()
    profiler = sim.enable_profiler()
    assert sim.enable_profiler() is profiler
    assert sim.profiler is profiler


def test_profiler_counts_events_and_sites():
    sim = Simulator()
    profiler = sim.enable_profiler()

    def noop():
        pass

    sim.schedule(1.0, noop)
    sim.schedule(2.0, noop)
    sim.schedule(3.0, lambda: None, name="named.site")
    sim.run()
    assert profiler.events == 3
    # Unnamed events are keyed by the callback's qualified name;
    # named events by their explicit name.
    sites = set(profiler.sites)
    assert "named.site" in sites
    assert any("noop" in site for site in sites)
    noop_site = next(s for s in sites if "noop" in s)
    assert profiler.sites[noop_site][0] == 2


def test_profiler_tracks_max_queue_depth():
    sim = Simulator()
    profiler = sim.enable_profiler()
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert profiler.max_queue_depth == 5


def test_profiler_snapshot_shape():
    sim = Simulator()
    profiler = sim.enable_profiler()
    sim.schedule(1.0, lambda: None, name="a")
    sim.run()
    snap = profiler.snapshot()
    assert snap["events"] == 1
    assert snap["max_queue_depth"] >= 1
    assert snap["busy_seconds"] >= 0.0
    assert snap["events_per_second"] >= 0.0
    (site,) = snap["sites"]
    assert site["site"] == "a"
    assert site["count"] == 1
    assert site["seconds"] >= 0.0
    assert site["mean_us"] >= 0.0


def test_pending_is_constant_time_accounting():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending == 10
    for event in events[:4]:
        event.cancel()
    assert sim.pending == 6


def test_mass_cancellation_triggers_compaction():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(500)]
    for event in events[:400]:
        event.cancel()
    assert sim.compactions >= 1
    # Compaction physically bounds the garbage: cancelled events left in
    # the heap never exceed max(floor, live entries).
    assert sim.pending == 100
    garbage = len(sim._heap) - sim.pending
    assert garbage <= max(Simulator.COMPACT_MIN_GARBAGE, sim.pending)
    fired = []
    sim.schedule(1000.0, fired.append, "tail")
    sim.run()
    assert sim.events_processed == 101
    assert fired == ["tail"]


def test_compaction_preserves_event_order():
    sim = Simulator()
    fired = []
    keep = []
    for i in range(300):
        event = sim.schedule(float(i + 1), fired.append, i)
        if i % 3 != 0:
            keep.append(i)
        else:
            event.cancel()
    sim.run()
    assert fired == keep


def test_cancel_twice_counts_once():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    e1.cancel()
    assert sim.pending == 1


def test_cancel_after_fire_does_not_skew_pending():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.step()
    event.cancel()  # already fired; must not count as queued garbage
    assert sim.pending == 1
    assert sim.step()
    assert not sim.step()


def test_cancel_from_within_callback():
    sim = Simulator()
    fired = []
    victim = sim.schedule(2.0, fired.append, "victim")
    sim.schedule(1.0, victim.cancel)
    sim.schedule(3.0, fired.append, "survivor")
    sim.run()
    assert fired == ["survivor"]


def test_run_until_leaves_future_events_queued():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.pending == 1
    sim.run()
    assert fired == ["a", "b"]


def test_profiler_sites_sorted_by_time_spent():
    import time as _time

    sim = Simulator()
    profiler = sim.enable_profiler()
    sim.schedule(1.0, lambda: None, name="cheap")
    sim.schedule(2.0, lambda: _time.sleep(0.005), name="dear")
    sim.run()
    sites = [entry["site"] for entry in profiler.snapshot()["sites"]]
    assert sites == ["dear", "cheap"]
