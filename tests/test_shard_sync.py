"""Unit tests for the conservative synchronization machinery.

The equivalence suite (tests/test_shard_equivalence.py) proves the
end-to-end property; these tests pin down the pieces it rests on:
horizon computation, the promise's lower-bound terms, ghost admission
filtering, order-independent hashed loss draws, outcome merging, and a
real :class:`~repro.campaign.workers.WorkerCrew` round trip through
the worker entry point.
"""

import math

import pytest

from repro.campaign.workers import WorkerCrew
from repro.radio import Channel, DistancePropagation, Topology
from repro.radio.channel import Transmission
from repro.shard import (
    ExportedTx,
    ShardPlan,
    ShardRuntime,
    merge_outcomes,
    next_horizon,
    run_oracle,
)
from repro.sim import Simulator
from repro.sim.rng import SeedSequence

FLOOD_PLAN = ShardPlan(
    scenario="flood", params={"columns": 8, "rows": 4},
    seed=11, duration=5.0, shards=2,
)


def export(src=0, start=1.0, end=1.01):
    return ExportedTx(
        src=src, start=start, end=end, nbytes=27,
        payload=b"x", link_dst=None,
    )


# ---------------------------------------------------------------------------
# next_horizon


class TestNextHorizon:
    def test_duration_caps_the_horizon(self):
        assert next_horizon([], [], 0.002, 10.0) == 10.0
        assert next_horizon([math.inf], [], 0.002, 10.0) == 10.0

    def test_earliest_peer_promise_wins(self):
        assert next_horizon([3.0, 7.0], [], 0.002, 10.0) == 3.0

    def test_export_term_bounds_unreacted_influence(self):
        # A transmission ending at t=2.0 can provoke a downstream
        # transmission anywhere from 2.0 + lookahead on; the horizon
        # must not pass that point even if every promise is later.
        h = next_horizon([5.0], [export(end=2.0)], 0.002, 10.0)
        assert h == pytest.approx(2.002)

    def test_own_promise_is_not_an_argument(self):
        """The caller passes peer promises only: a shard's own future
        transmissions are simulated locally and must not throttle its
        own window (that is the differentiated-horizon design)."""
        assert next_horizon([], [], 0.002, 10.0) == 10.0


# ---------------------------------------------------------------------------
# ShardRuntime.promise


class TestPromise:
    def test_promise_lower_bounds_the_next_window(self):
        rt = ShardRuntime(FLOOD_PLAN, rank=0)
        p = rt.promise()
        assert rt.sim.now <= p < math.inf
        # The promise is at least the earliest queued event: nothing
        # can transmit before it.
        assert p >= rt.sim.peek_time()

    def test_promise_reflects_frontier_attempts(self):
        rt = ShardRuntime(FLOOD_PLAN, rank=0)
        p = rt.promise()
        earliest_attempt = min(
            (t for t, _seq, e in rt._attempts
             if not e.cancelled and e._owner is not None),
            default=math.inf,
        )
        peek = rt.sim.peek_time()
        expected = min(earliest_attempt, peek + rt.lookahead)
        assert p == expected

    def test_moves_are_promise_barriers(self):
        plan = ShardPlan(
            scenario="mobility", params={"columns": 8, "rows": 4},
            seed=11, duration=8.0, shards=2,
        )
        rt = ShardRuntime(plan, rank=0)
        assert rt._move_events
        first_move = rt._move_events[0].time
        assert rt.promise() <= first_move

    def test_empty_queue_promises_infinity(self):
        rt = ShardRuntime(FLOOD_PLAN, rank=0)
        for event in list(rt.sim.pending_events()):
            event.cancel()
        rt._move_events.clear()
        assert rt.promise() == math.inf

    def test_lookahead_is_the_min_mac_gap(self):
        rt = ShardRuntime(FLOOD_PLAN, rank=0)
        gaps = [
            min(mac.interframe_gap, mac.min_backoff)
            for mac in rt.net.macs.values()
        ]
        assert rt.lookahead == min(gaps)
        assert rt.lookahead > 0


# ---------------------------------------------------------------------------
# Ghost admission


class TestInject:
    def test_audible_export_is_admitted_inaudible_skipped(self):
        rt = ShardRuntime(FLOOD_PLAN, rank=0)
        foreign = sorted(
            set(rt.net.topology.node_ids()) - set(rt.owned)
        )
        near = next(
            n for n in foreign if rt.boundary.listeners_across(n)
        )
        far = next(
            (n for n in foreign if not rt.boundary.listeners_across(n)),
            None,
        )
        t0 = rt.sim.now + 0.5
        rt.inject([export(src=near, start=t0, end=t0 + 0.01)])
        assert rt.stats.ghosts_admitted == 1
        ghosts = [
            e for e in rt.sim.pending_events()
            if e.name == "shard.ghost"
        ]
        assert len(ghosts) == 1
        assert ghosts[0].time == t0
        # Ghosts precede same-instant local traffic.
        assert ghosts[0].priority == -1
        if far is not None:
            rt.inject([export(src=far, start=t0, end=t0 + 0.01)])
            assert rt.stats.ghosts_admitted == 1
            assert rt.stats.ghosts_skipped == 1

    def test_single_shard_runtime_ignores_injection(self):
        plan = ShardPlan(
            scenario="flood", params={"columns": 8, "rows": 4},
            seed=11, duration=5.0, shards=1,
        )
        rt = ShardRuntime(plan, rank=0)
        rt.inject([export()])
        assert rt.stats.ghosts_admitted == 0


# ---------------------------------------------------------------------------
# Hashed loss draws


class TestHashedLoss:
    def make_channel(self, seed=5):
        topo = Topology()
        topo.add_node(0, 0.0, 0.0)
        topo.add_node(1, 10.0, 0.0)
        sim = Simulator()
        return Channel(
            sim, DistancePropagation(topo, seed=seed),
            seeds=SeedSequence(seed), loss_mode="hashed",
        )

    def tx(self, src, start):
        return Transmission(
            src=src, start=start, end=start + 0.01,
            payload=b"p", nbytes=27, link_dst=None, seqno=1,
        )

    def test_draw_depends_only_on_link_and_time(self):
        """The hashed draw is a pure function of (seed, src, dst,
        start): two channels draw identical values in any order — the
        property that makes loss independent of which shard hosts the
        receiver and of event interleaving."""
        a = self.make_channel()
        b = self.make_channel()
        keys = [(0, 1.0), (1, 1.0), (0, 2.5), (1, 0.125)]
        draws_a = [a._loss_draw(1 - src, self.tx(src, t)) for src, t in keys]
        draws_b = [
            b._loss_draw(1 - src, self.tx(src, t))
            for src, t in reversed(keys)
        ]
        assert draws_a == list(reversed(draws_b))

    def test_different_links_decorrelate(self):
        ch = self.make_channel()
        draws = {
            ch._loss_draw(1, self.tx(0, t))
            for t in (1.0, 2.0, 3.0, 4.0, 5.0)
        }
        assert len(draws) == 5
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_different_seeds_decorrelate(self):
        a = self.make_channel(seed=5)
        b = self.make_channel(seed=6)
        assert a._loss_draw(1, self.tx(0, 1.0)) != b._loss_draw(
            1, self.tx(0, 1.0)
        )


# ---------------------------------------------------------------------------
# merge_outcomes


class TestMergeOutcomes:
    def test_numbers_sum_lists_sort_dicts_recurse(self):
        merged = merge_outcomes([
            {"sent": 3, "ratio": 0.5, "ok": False,
             "times": [2.0, 1.0], "sub": {"x": 1}},
            {"sent": 4, "ratio": 0.25, "ok": True,
             "times": [1.5], "sub": {"x": 2}},
        ])
        assert merged == {
            "sent": 7, "ratio": 0.75, "ok": True,
            "times": [1.0, 1.5, 2.0], "sub": {"x": 3},
        }

    def test_bools_merge_with_any_not_sum(self):
        merged = merge_outcomes([{"ok": True}, {"ok": True}])
        assert merged["ok"] is True

    def test_empty_input_merges_to_empty(self):
        assert merge_outcomes([]) == {}

    def test_unmergeable_type_is_an_error(self):
        with pytest.raises(TypeError, match="unmergeable"):
            merge_outcomes([{"k": "a"}, {"k": "b"}])


# ---------------------------------------------------------------------------
# WorkerCrew round trip


def _peer_sum_worker(rank, size, peers, base):
    """Exchange rank stamps all-to-all; every worker returns the same
    total, proving each pipe carried real data both ways."""
    total = base + rank
    for peer_rank, conn in peers.items():
        conn.send(rank)
    for peer_rank, conn in peers.items():
        total += conn.recv()
    return {"rank": rank, "total": total}


class TestWorkerCrew:
    def test_all_to_all_pipes_carry_data(self):
        with WorkerCrew(
            3, "tests.test_shard_sync:_peer_sum_worker"
        ) as crew:
            crew.start([100] * 3)
            results = crew.collect(timeout=60)
        assert [r["rank"] for r in results] == [0, 1, 2]
        assert [r["total"] for r in results] == [103, 103, 103]

    def test_shard_worker_main_runs_under_the_crew(self):
        """The real worker entry point over real pipes equals the
        oracle (the process-transport equivalence path, one more time
        at the unit level)."""
        oracle = run_oracle(FLOOD_PLAN)
        with WorkerCrew(
            FLOOD_PLAN.shards, "repro.shard.worker:shard_worker_main"
        ) as crew:
            crew.start([FLOOD_PLAN] * FLOOD_PLAN.shards)
            results = crew.collect(timeout=120)
        merged = merge_outcomes([r["outcome"] for r in results])
        assert merged == oracle
