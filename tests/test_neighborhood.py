"""Unit tests for the radio fast path: the neighborhood index, the
active-transmitter registry, Channel.detach, and the de-correlated
default MAC rng streams."""

import math

import pytest

from repro.link.neighbor import EphemeralIdAllocator
from repro.mac import CsmaMac
from repro.radio import (
    Channel,
    DistancePropagation,
    GilbertElliotLink,
    Modem,
    NeighborhoodIndex,
    TablePropagation,
    Topology,
    supports_fast_path,
)
from repro.sim import SeedSequence, Simulator


def make_net(links, n_nodes=3, indexed=None):
    sim = Simulator()
    channel = Channel(
        sim, TablePropagation(links), seeds=SeedSequence(1), indexed=indexed
    )
    modems = [Modem(sim, channel, node_id=i) for i in range(n_nodes)]
    return sim, channel, modems


class LegacyModel:
    """A propagation model that predates the fast-path protocol."""

    def link_prr(self, src, dst, now):
        return 1.0 if src != dst else 0.0


class TestFastPathSupport:
    def test_builtin_models_support(self):
        topo = Topology.line(2)
        assert supports_fast_path(DistancePropagation(topo))
        assert supports_fast_path(TablePropagation({}))
        assert supports_fast_path(
            GilbertElliotLink(DistancePropagation(topo))
        )

    def test_legacy_model_not_supported(self):
        assert not supports_fast_path(LegacyModel())
        # Gilbert-Elliot delegates its epoch, so wrapping a legacy model
        # is detected as unsupported too.
        assert not supports_fast_path(GilbertElliotLink(LegacyModel()))

    def test_channel_auto_detects(self):
        sim = Simulator()
        assert Channel(sim, TablePropagation({})).indexed
        assert not Channel(sim, LegacyModel()).indexed

    def test_forcing_index_on_legacy_model_rejected(self):
        with pytest.raises(ValueError):
            Channel(Simulator(), LegacyModel(), indexed=True)

    def test_legacy_model_still_delivers(self):
        sim = Simulator()
        channel = Channel(sim, LegacyModel(), seeds=SeedSequence(1))
        modems = [Modem(sim, channel, node_id=i) for i in range(2)]
        got = []
        modems[1].receive_callback = lambda *args: got.append(args)
        modems[0].transmit_fragment("x", 10)
        sim.run()
        assert len(got) == 1


class TestNeighborhoodIndex:
    def test_audible_and_carrier_sets(self):
        prop = TablePropagation({
            (0, 1): 1.0,
            (0, 2): 0.02,   # audible but below the carrier threshold
            (1, 0): 0.5,
        })
        index = NeighborhoodIndex(prop, carrier_threshold=0.05)
        for node in (0, 1, 2):
            index.add_node(node)
        assert index.audible_from(0) == [1, 2]
        assert index.carrier_candidates(0) == {1}
        assert index.audible_from(2) == []

    def test_sets_follow_attach_order(self):
        prop = TablePropagation({(0, 2): 1.0, (0, 1): 1.0})
        index = NeighborhoodIndex(prop, carrier_threshold=0.05)
        for node in (2, 0, 1):  # deliberately not sorted
            index.add_node(node)
        assert index.audible_from(0) == [2, 1]

    def test_epoch_invalidation_on_move(self):
        topo = Topology()
        topo.add_node(0, 0.0, 0.0)
        topo.add_node(1, 10.0, 0.0)
        prop = DistancePropagation(topo, asymmetry=0.0)
        index = NeighborhoodIndex(prop, carrier_threshold=0.05)
        index.add_node(0)
        index.add_node(1)
        assert index.audible_from(0) == [1]
        assert index.link_prr(0, 1, 0.0) == 1.0
        topo.move_node(1, 500.0, 0.0)
        assert index.audible_from(0) == []
        assert index.link_prr(0, 1, 1.0) == 0.0
        assert index.rebuilds == 1

    def test_table_edit_bumps_epoch(self):
        prop = TablePropagation({(0, 1): 1.0})
        index = NeighborhoodIndex(prop, carrier_threshold=0.05)
        index.add_node(0)
        index.add_node(1)
        assert index.audible_from(0) == [1]
        prop.remove_link(0, 1)
        assert index.audible_from(0) == []

    def test_memo_hits_within_static_epoch(self):
        prop = TablePropagation({(0, 1): 0.8})
        index = NeighborhoodIndex(prop, carrier_threshold=0.05)
        index.add_node(0)
        index.add_node(1)
        for _ in range(5):
            assert index.link_prr(0, 1, float(_)) == 0.8
        assert index.memo_misses == 1
        assert index.memo_hits == 4

    def test_gilbert_window_expires_per_link(self):
        topo = Topology.line(2, spacing=5.0)
        ge = GilbertElliotLink(
            DistancePropagation(topo, asymmetry=0.0),
            mean_good=1.0, mean_bad=1.0, bad_scale=0.5, seed=3,
        )
        index = NeighborhoodIndex(ge, carrier_threshold=0.05)
        index.add_node(0)
        index.add_node(1)
        # Sample both the index and a fresh reference model over time:
        # values must agree even though the index only recomputes when a
        # link's own window lapses.
        reference = GilbertElliotLink(
            DistancePropagation(Topology.line(2, spacing=5.0), asymmetry=0.0),
            mean_good=1.0, mean_bad=1.0, bad_scale=0.5, seed=3,
        )
        times = [i * 0.25 for i in range(80)]
        got = [index.link_prr(0, 1, t) for t in times]
        want = [reference.link_prr(0, 1, t) for t in times]
        assert got == want
        assert len(set(got)) == 2          # both states were visited
        assert index.memo_hits > 0         # and the memo did real work
        assert index.memo_misses < len(times)

    def test_window_value_matches_plain_query(self):
        topo = Topology.line(3, spacing=12.0)
        prop = DistancePropagation(topo, seed=5)
        prr, expires = prop.link_prr_window(0, 1, 0.0)
        assert prr == prop.link_prr(0, 1, 0.0)
        assert expires == math.inf


class TestActiveRegistry:
    def test_carrier_checks_scale_with_transmitters(self):
        links = {(i, 9): 1.0 for i in range(9)}
        sim, channel, modems = make_net(links, n_nodes=10)
        assert channel.indexed
        channel.carrier_busy(9)
        assert channel.carrier_checks == 0  # nobody on the air
        modems[0].transmit_fragment("a", 27)
        before = channel.carrier_checks
        channel.carrier_busy(9)
        # One active transmitter -> exactly one link examined, despite
        # ten attached modems.
        assert channel.carrier_checks == before + 1

    def test_reference_scan_counts_all_modems(self):
        links = {(i, 9): 1.0 for i in range(9)}
        sim, channel, modems = make_net(links, n_nodes=10, indexed=False)
        channel.carrier_busy(9)
        assert channel.carrier_checks == 9

    def test_registry_drains_after_transmission(self):
        sim, channel, modems = make_net({(0, 1): 1.0})
        modems[0].transmit_fragment("a", 27)
        assert channel.carrier_busy(1)
        sim.run()
        assert not channel.carrier_busy(1)
        assert channel._active == {}


class TestDetach:
    def test_detach_removes_from_sets_and_delivery(self):
        sim, channel, modems = make_net({(0, 1): 1.0, (0, 2): 1.0})
        assert channel.index.audible_from(0) == [1, 2]
        channel.detach(1)
        assert channel.index.audible_from(0) == [2]
        got = []
        modems[2].receive_callback = lambda *args: got.append(args)
        modems[1].receive_callback = lambda *args: got.append(("dead", args))
        modems[0].transmit_fragment("x", 10)
        sim.run()
        assert got == [("x", 0, 10, None)]
        assert channel.fragments_delivered == 1

    def test_detach_voids_pending_receptions(self):
        sim, channel, modems = make_net({(0, 1): 1.0})
        modems[0].transmit_fragment("x", 10)
        channel.detach(1)  # mid-flight
        sim.run()
        assert channel.fragments_delivered == 0
        assert channel.fragments_lost == 0
        assert 1 not in channel._receiving

    def test_detach_unknown_rejected(self):
        sim, channel, modems = make_net({})
        with pytest.raises(ValueError):
            channel.detach(99)

    def test_reattach_after_detach(self):
        sim, channel, modems = make_net({(0, 1): 1.0})
        modem = channel.detach(1)
        channel.attach(modem)
        got = []
        modem.receive_callback = lambda *args: got.append(args)
        modems[0].transmit_fragment("x", 10)
        sim.run()
        assert len(got) == 1

    def test_detach_clears_active_registry(self):
        sim, channel, modems = make_net({(0, 1): 1.0, (0, 2): 1.0})
        modems[0].transmit_fragment("x", 10)
        channel.detach(0)
        assert not channel.carrier_busy(1)
        sim.run()  # the modem's tx-done event must not blow up


class TestDefaultRngStreams:
    def test_csma_default_backoffs_decorrelated(self):
        sim, channel, modems = make_net({}, n_nodes=2)
        macs = [CsmaMac(sim, modem) for modem in modems]
        draws_a = [macs[0].rng.random() for _ in range(8)]
        draws_b = [macs[1].rng.random() for _ in range(8)]
        assert draws_a != draws_b

    def test_csma_default_deterministic_per_node(self):
        first = make_net({}, n_nodes=1)
        second = make_net({}, n_nodes=1)
        mac_a = CsmaMac(first[0], first[2][0])
        mac_b = CsmaMac(second[0], second[2][0])
        assert [mac_a.rng.random() for _ in range(4)] == [
            mac_b.rng.random() for _ in range(4)
        ]

    def test_ephemeral_allocator_defaults_decorrelated(self):
        alloc_a = EphemeralIdAllocator()
        alloc_b = EphemeralIdAllocator()
        ids_a = [alloc_a.allocate() for _ in range(10)]
        ids_b = [alloc_b.allocate() for _ in range(10)]
        assert ids_a != ids_b
