"""Fault-path tests for the block-transfer retransmission machinery:
BlockSender/BlockReceiver under fragment corruption and link flaps,
without any custody agents — the hop-by-hop reliability layer alone."""

import pytest

from repro.core import DiffusionConfig
from repro.faults import FaultEngine
from repro.faults.plan import FaultPlan, FragmentCorruption, LinkFlap
from repro.radio import Topology
from repro.sim.rng import make_rng
from repro.testbed import SensorNetwork
from repro.transfer import (
    BlockReceiver,
    BlockSender,
    DataObject,
    RetransmitPolicy,
)

SINK = 0


def fast_config():
    return DiffusionConfig(
        interest_interval=10.0,
        interest_jitter=0.5,
        gradient_timeout=30.0,
        exploratory_interval=8.0,
        reinforced_timeout=20.0,
        reinforcement_jitter=0.3,
    )


def armed_transfer(nodes=4, seed=5, payload_bytes=1024, plan=None,
                   reliability=True, duration=120.0):
    network = SensorNetwork(
        Topology.line(nodes, spacing=15.0), seed=seed, config=fast_config()
    )
    engine = FaultEngine(network, plan) if plan is not None else None
    policy = RetransmitPolicy() if reliability else None
    source = nodes - 1
    obj = DataObject("fault-obj", bytes(range(256)) * (payload_bytes // 256))
    done = []
    receiver = BlockReceiver(
        network.api(SINK),
        "fault-obj",
        on_complete=lambda payload, stats: done.append(payload),
        quiet_timeout=4.0,
        max_repair_rounds=8,
        max_quiet_timeout=20.0,
        reliability=policy,
        rng=make_rng(seed, "dtn:receiver") if reliability else None,
        persistent=reliability,
    )
    sender = BlockSender(
        network.api(source),
        block_interval=0.5,
        reliability=policy,
        rng=make_rng(seed, "dtn:sender") if reliability else None,
    )
    network.sim.schedule(5.0, sender.offer, obj, 0.0)
    network.run(until=duration)
    return obj, sender, receiver, done, engine


class TestFragmentCorruption:
    def test_transfer_survives_corruption_at_a_relay(self):
        # Node 1 relays sink-bound blocks; corrupt half its inbound
        # fragments for most of the stream.
        plan = FaultPlan((
            FragmentCorruption(node=1, at=6.0, duration=30.0, rate=0.5),
        ))
        obj, sender, receiver, done, _ = armed_transfer(plan=plan)
        assert done, "transfer never completed under fragment corruption"
        assert receiver.stats.complete
        # Recovery machinery actually did work: some combination of
        # sender retransmits and NACK repair rounds.
        assert sender.retransmits + sender.repairs_served > 0

    def test_recovered_payload_is_intact(self):
        plan = FaultPlan((
            FragmentCorruption(node=1, at=6.0, duration=20.0, rate=0.4),
        ))
        obj, sender, receiver, done, _ = armed_transfer(plan=plan)
        assert done and done[0] == obj.data


class TestLinkFlap:
    def test_transfer_survives_a_mid_stream_flap(self):
        # Cut the only path (the 1-2 link) mid-stream, twice.
        plan = FaultPlan((
            LinkFlap(a=1, b=2, at=8.0, down=12.0, flaps=2, period=30.0),
        ))
        obj, sender, receiver, done, _ = armed_transfer(plan=plan)
        assert done, "transfer never completed across link flaps"
        assert receiver.stats.complete
        assert sender.retransmits > 0

    def test_reliability_recovers_blocks_the_legacy_stack_loses(self):
        plan = FaultPlan((
            LinkFlap(a=1, b=2, at=8.0, down=12.0, flaps=2, period=30.0),
        ))
        _, _, legacy_rx, _, _ = armed_transfer(plan=plan, reliability=False)
        _, _, armed_rx, armed_done, _ = armed_transfer(plan=plan)
        assert len(armed_rx._blocks) >= len(legacy_rx._blocks)
        assert armed_done


class TestAckRelease:
    def test_sender_timers_stand_down_on_completion(self):
        obj, sender, receiver, done, _ = armed_transfer(plan=None)
        assert done
        # The receiver's completion ack covered every block: no
        # retransmission timers may survive it.
        assert not sender._retry
        assert sender.acked_blocks(obj.object_id) == set(
            range(obj.block_count)
        )
