"""Tests for causal trace ids and offline path reconstruction."""

import pytest

from repro.analysis.paths import (
    format_loss_table,
    format_path,
    format_route,
    loss_attribution,
    reconstruct_paths,
    trace_timeline,
)
from repro.core.messages import make_data, make_reinforcement
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio import Topology
from repro.sim import TraceCollector, TraceRecord, trace_id_of
from repro.testbed import SensorNetwork


class TestTraceIdentity:
    def test_trace_id_is_origin_dot_msgid(self):
        attrs = AttributeVector.builder().actual(Key.TYPE, "x").build()
        message = make_data(attrs, origin=7, exploratory=False)
        assert message.trace_id == f"7.{message.msg_id}"

    def test_forwarding_preserves_identity_and_counts_hops(self):
        attrs = AttributeVector.builder().actual(Key.TYPE, "x").build()
        message = make_data(attrs, origin=7, exploratory=False)
        hop1 = message.forwarded_copy(3)
        hop2 = hop1.forwarded_copy(4)
        assert hop1.trace_id == message.trace_id == hop2.trace_id
        assert (message.hop_count, hop1.hop_count, hop2.hop_count) == (0, 1, 2)

    def test_reinforcement_names_its_trigger(self):
        attrs = AttributeVector.builder().eq(Key.TYPE, "x").build()
        reinf = make_reinforcement(
            positive=True,
            interest_attrs=attrs,
            interest_digest=b"d",
            data_origin=7,
            origin=1,
            next_hop=2,
            parent_trace="7.42",
        )
        assert reinf.parent_trace == "7.42"

    def test_trace_id_of_unwraps_fragments(self):
        attrs = AttributeVector.builder().actual(Key.TYPE, "x").build()
        message = make_data(attrs, origin=7, exploratory=False)

        class FakeFragment:
            def __init__(self, message):
                self.message = message

        assert trace_id_of(FakeFragment(message)) == message.trace_id
        assert trace_id_of(message) == message.trace_id
        assert trace_id_of(object()) is None
        assert trace_id_of(b"raw") is None


def _record(t, cat, node=None, **data):
    return TraceRecord(time=t, category=cat, node=node, data=data)


class TestReconstructSynthetic:
    """Reconstruction over hand-built records: exact control of events."""

    def _three_hop_records(self):
        return [
            _record(0.0, "path.origin", node=3, trace="3.1",
                    msg_type="DATA", parent=None),
            _record(0.1, "diffusion.tx", node=3, trace="3.1", hops=1,
                    nbytes=40),
            _record(0.15, "diffusion.rx", node=2, trace="3.1", hops=1,
                    src=3, nbytes=40),
            _record(0.2, "diffusion.tx", node=2, trace="3.1", hops=2,
                    nbytes=40),
            _record(0.26, "diffusion.rx", node=1, trace="3.1", hops=2,
                    src=2, nbytes=40),
            _record(0.3, "diffusion.tx", node=1, trace="3.1", hops=3,
                    nbytes=40),
            _record(0.37, "diffusion.rx", node=0, trace="3.1", hops=3,
                    src=1, nbytes=40),
            _record(0.37, "app.deliver", node=0, trace="3.1", hops=3),
        ]

    def test_full_three_hop_chain(self):
        paths = reconstruct_paths(self._three_hop_records())
        path = paths["3.1"]
        assert path.delivered
        assert path.origin_node == 3
        (delivery, chain), = path.delivery_routes()
        assert [h.src for h in chain] == [3, 2, 1]
        assert [h.dst for h in chain] == [2, 1, 0]
        assert [round(h.latency, 3) for h in chain] == [0.05, 0.06, 0.07]

    def test_route_formatting(self):
        paths = reconstruct_paths(self._three_hop_records())
        (_, chain), = paths["3.1"].delivery_routes()
        assert format_route(chain) == (
            "3 -(50.0ms)-> 2 -(60.0ms)-> 1 -(70.0ms)-> 0"
        )
        assert "delivered at node 0" in format_path(paths["3.1"])

    def test_drop_attribution_label(self):
        records = [
            _record(0.0, "path.origin", node=3, trace="3.2",
                    msg_type="DATA", parent=None),
            _record(0.1, "diffusion.tx", node=3, trace="3.2", hops=1),
            _record(0.2, "path.drop", node=2, trace="3.2",
                    reason="collision", layer="radio"),
        ]
        paths = reconstruct_paths(records)
        path = paths["3.2"]
        assert not path.delivered
        assert path.loss_label == "collision"
        assert path.unmatched_tx == 1

    def test_last_drop_wins_as_label(self):
        records = [
            _record(0.0, "path.origin", node=3, trace="3.3",
                    msg_type="DATA", parent=None),
            _record(0.1, "path.drop", node=2, trace="3.3",
                    reason="cache-suppression", layer="core"),
            _record(0.5, "path.drop", node=1, trace="3.3",
                    reason="queue-full", layer="mac"),
        ]
        assert reconstruct_paths(records)["3.3"].loss_label == "queue-full"

    def test_no_drop_records_means_in_flight(self):
        records = [
            _record(0.0, "path.origin", node=3, trace="3.4",
                    msg_type="DATA", parent=None),
        ]
        assert reconstruct_paths(records)["3.4"].loss_label == "in-flight"

    def test_loss_attribution_counts_by_label(self):
        records = [
            _record(0.0, "path.origin", node=1, trace="1.1",
                    msg_type="DATA", parent=None),
            _record(0.1, "path.drop", node=1, trace="1.1",
                    reason="no-route", layer="core"),
            _record(0.0, "path.origin", node=1, trace="1.2",
                    msg_type="DATA", parent=None),
            _record(0.1, "path.drop", node=2, trace="1.2",
                    reason="no-route", layer="core"),
            # Interests are not data: excluded from the table.
            _record(0.0, "path.origin", node=1, trace="1.3",
                    msg_type="INTEREST", parent=None),
        ]
        table = loss_attribution(reconstruct_paths(records))
        assert table == {"no-route": 2}
        rendered = format_loss_table(table)
        assert "no-route" in rendered and "100.0%" in rendered

    def test_empty_loss_table_renders(self):
        assert "no undelivered" in format_loss_table({})

    def test_timeline_filters_and_sorts(self):
        records = self._three_hop_records()
        timeline = trace_timeline(reversed(records), "3.1")
        assert [r.category for r in timeline][0] == "path.origin"
        assert len(timeline) == len(records)
        assert trace_timeline(records, "9.9") == []

    def test_records_without_trace_ignored(self):
        records = [
            _record(0.0, "channel.tx", node=1, nbytes=27),
            _record(0.1, "diffusion.tx", node=1, hops=1),
        ]
        assert reconstruct_paths(records) == {}


class TestReconstructLineNetwork:
    """End-to-end: reconstruct real paths on a 3-hop line (satellite)."""

    def _run_line(self, nodes=4, seed=3, until=30.0):
        net = SensorNetwork(Topology.line(nodes, spacing=15.0), seed=seed)
        with TraceCollector(net.trace) as collector:
            sink, source = 0, nodes - 1
            got = []
            sub = AttributeVector.builder().eq(Key.TYPE, "p").build()
            net.api(sink).subscribe(sub, lambda a, m: got.append(m))
            pub = net.api(source).publish(
                AttributeVector.builder().actual(Key.TYPE, "p").build()
            )
            for i in range(6):
                net.sim.schedule(
                    2.0 + 3.0 * i, net.api(source).send, pub,
                    AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
                )
            net.run(until=until)
        return net, got, reconstruct_paths(collector.records)

    def test_three_hop_delivery_reconstructed(self):
        net, got, paths = self._run_line()
        assert got, "sanity: the line should deliver"
        delivered = [
            p for p in paths.values()
            if p.delivered and p.msg_type in ("DATA", "EXPLORATORY_DATA")
        ]
        assert len(delivered) == len(got)
        for path in delivered:
            for delivery, chain in path.delivery_routes():
                # A 4-node line is exactly 3 radio hops end to end.
                assert delivery.hops == 3
                assert len(chain) == 3
                assert [h.src for h in chain] == [3, 2, 1]
                assert [h.dst for h in chain] == [2, 1, 0]
                # Per-hop latencies are positive and sum to the total.
                assert all(h.latency > 0 for h in chain)
                total = delivery.time - chain[0].sent_at
                assert sum(h.latency for h in chain) <= total + 1e-9

    def test_undelivered_data_all_labelled(self):
        _, _, paths = self._run_line()
        for path in paths.values():
            if path.msg_type in ("DATA", "EXPLORATORY_DATA"):
                assert path.delivered or path.loss_label is not None


@pytest.mark.slow
class TestIsiAcceptance:
    """The ISSUE acceptance scenario: the ISI 14-node testbed."""

    def test_reinforced_paths_and_loss_labels(self):
        from repro.testbed import FIG8_SINK, FIG8_SOURCES, isi_testbed_network

        net = isi_testbed_network(seed=1)
        with TraceCollector(net.trace) as collector:
            got = []
            sub = AttributeVector.builder().eq(Key.TYPE, "ev").build()
            net.api(FIG8_SINK).subscribe(sub, lambda a, m: got.append(m))
            for source in FIG8_SOURCES:
                pub = net.api(source).publish(
                    AttributeVector.builder()
                    .actual(Key.TYPE, "ev")
                    .actual(Key.INSTANCE, str(source))
                    .build()
                )

                def tick(api=net.api(source), pub=pub, seq=[0]):
                    api.send(
                        pub,
                        AttributeVector.builder()
                        .actual(Key.SEQUENCE, seq[0]).build(),
                    )
                    seq[0] += 1
                    if net.sim.now < 110.0:
                        net.sim.schedule(6.0, tick)

                net.sim.schedule(3.0, tick)
            net.run(until=120.0)
        assert got, "sanity: the testbed should deliver events"
        paths = reconstruct_paths(collector.records)
        data_paths = [
            p for p in paths.values()
            if p.msg_type in ("DATA", "EXPLORATORY_DATA")
        ]
        delivered = [p for p in data_paths if p.delivered]
        assert len(delivered) == len({
            (m.origin, m.msg_id) for m in got
        })
        for path in delivered:
            for delivery, chain in path.delivery_routes():
                # The full per-hop route must reconstruct: as many hop
                # records as the delivery's hop count, ending at the
                # sink, starting at the source, each with a latency.
                assert len(chain) == delivery.hops
                assert chain[-1].dst == FIG8_SINK
                assert chain[0].src == path.origin_node
                assert all(h.latency > 0 for h in chain)
        # Every undelivered data message carries a loss label.
        for path in data_paths:
            if not path.delivered:
                assert path.loss_label is not None
        table = loss_attribution(paths)
        assert sum(table.values()) == len(data_paths) - len(delivered)
