"""Property-based tests for kernel, cache, fragmentation, and energy."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.cache import DataCache
from repro.energy.model import DutyCycleModel
from repro.link.frag import Fragment, FragmentationLayer
from repro.mac import CsmaMac
from repro.radio import Channel, Modem, TablePropagation
from repro.sim import SeedSequence, Simulator


class TestKernelProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_run_until_never_executes_later_events(self, delays, horizon):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=horizon)
        assert all(d <= horizon for d in fired)
        assert sim.now >= horizon or not delays


class TestCacheProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=30), max_size=100),
        st.integers(min_value=1, max_value=10),
    )
    def test_capacity_never_exceeded(self, keys, capacity):
        cache = DataCache(capacity=capacity, timeout=1e9)
        for i, key in enumerate(keys):
            cache.seen_before(key, now=float(i))
            assert len(cache) <= capacity

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=50))
    def test_immediate_requery_is_hit(self, keys):
        cache = DataCache(capacity=100, timeout=10.0)
        for key in keys:
            cache.seen_before(key, now=0.0)
            assert cache.seen_before(key, now=0.0)


class TestFragmentationProperties:
    def _layer(self):
        sim = Simulator()
        channel = Channel(sim, TablePropagation({}), seeds=SeedSequence(1))
        modem = Modem(sim, channel, node_id=0)
        mac = CsmaMac(sim, modem)
        return sim, FragmentationLayer(sim, mac, node_id=0)

    @given(st.integers(min_value=1, max_value=2000))
    def test_fragment_count_covers_message(self, nbytes):
        sim, layer = self._layer()
        count = layer.fragments_for(nbytes)
        assert (count - 1) * layer.fragment_payload < nbytes
        assert count * layer.fragment_payload >= nbytes

    @given(
        st.integers(min_value=28, max_value=300),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=50)
    def test_reassembly_order_independent(self, nbytes, rng):
        sim, layer = self._layer()
        delivered = []
        layer.deliver_callback = lambda msg, src, nb: delivered.append((msg, nb))
        count = layer.fragments_for(nbytes)
        remaining = nbytes
        fragments = []
        for index in range(count):
            size = min(layer.fragment_payload, remaining)
            remaining -= size
            fragments.append(
                Fragment(
                    message_id=(9, 1),
                    index=index,
                    count=count,
                    nbytes=size,
                    message="payload",
                )
            )
        rng.shuffle(fragments)
        for fragment in fragments:
            layer.on_fragment(fragment, src=9)
        assert delivered == [("payload", nbytes)]


class TestEnergyProperties:
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_fractions_sum_to_one(self, duty):
        b = DutyCycleModel().breakdown(duty)
        total = b.listen_fraction + b.receive_fraction + b.send_fraction
        assert abs(total - 1.0) < 1e-9

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_energy_monotone_in_duty_cycle(self, d1, d2):
        model = DutyCycleModel()
        low, high = sorted((d1, d2))
        assert model.energy(low) <= model.energy(high)
