"""Unit tests for diffusion core data structures."""

import pytest

from repro.core import DataCache, DiffusionConfig, GradientTable, Message, MessageType
from repro.core.filter_api import Filter, GRADIENT_FILTER_PRIORITY
from repro.core.messages import make_data, make_interest, make_reinforcement
from repro.naming import AttributeVector
from repro.naming.keys import ClassValue, Key


def light_interest() -> AttributeVector:
    return AttributeVector.builder().eq(Key.TYPE, "light").actual(Key.INTERVAL, 2000).build()


def light_data(seq=0) -> AttributeVector:
    return AttributeVector.builder().actual(Key.TYPE, "light").actual(Key.SEQUENCE, seq).build()


class TestDiffusionConfig:
    def test_defaults_valid(self):
        DiffusionConfig().validate()

    def test_paper_rates(self):
        config = DiffusionConfig()
        assert config.interest_interval == 60.0
        assert config.exploratory_interval == 60.0
        assert config.exploratory_every is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interest_interval": 0.0},
            {"exploratory_every": 0},
            {"gradient_timeout": 10.0},
            {"cache_capacity": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DiffusionConfig(**kwargs).validate()


class TestMessage:
    def test_unique_ids_increase(self):
        a = make_interest(light_interest(), origin=1)
        b = make_interest(light_interest(), origin=1)
        assert a.unique_id != b.unique_id

    def test_nbytes_includes_header_and_attrs(self):
        msg = make_data(light_data(), origin=1, exploratory=False, header_bytes=24)
        assert msg.nbytes > 24
        padded = make_data(
            light_data(), origin=1, exploratory=False, header_bytes=24,
            padding_bytes=50,
        )
        assert padded.nbytes == msg.nbytes + 50

    def test_matching_attrs_adds_class(self):
        msg = make_interest(light_interest(), origin=1)
        effective = msg.matching_attrs()
        assert effective.value_of(Key.CLASS) == int(ClassValue.INTEREST)

    def test_exploratory_class_value(self):
        msg = make_data(light_data(), origin=1, exploratory=True)
        assert msg.msg_type is MessageType.EXPLORATORY_DATA
        assert msg.matching_attrs().value_of(Key.CLASS) == int(ClassValue.EXPLORATORY)

    def test_forwarded_copy_keeps_identity(self):
        msg = make_data(light_data(), origin=1, exploratory=False)
        fwd = msg.forwarded_copy(next_hop=7)
        assert fwd.unique_id == msg.unique_id
        assert fwd.next_hop == 7
        assert msg.next_hop is None

    def test_reinforcement_fields(self):
        msg = make_reinforcement(
            positive=True,
            interest_attrs=light_interest(),
            interest_digest=b"x" * 20,
            data_origin=5,
            origin=2,
            next_hop=3,
        )
        assert msg.msg_type is MessageType.POSITIVE_REINFORCEMENT
        assert msg.data_origin == 5
        assert msg.next_hop == 3

    def test_is_data_property(self):
        assert MessageType.DATA.is_data
        assert MessageType.EXPLORATORY_DATA.is_data
        assert not MessageType.INTEREST.is_data


class TestDataCache:
    def test_first_seen_false_then_true(self):
        cache = DataCache()
        assert not cache.seen_before(("a", 1), now=0.0)
        assert cache.seen_before(("a", 1), now=1.0)

    def test_expiry(self):
        cache = DataCache(timeout=10.0)
        cache.seen_before("k", now=0.0)
        assert not cache.seen_before("k", now=11.0)

    def test_capacity_eviction_fifo(self):
        cache = DataCache(capacity=2, timeout=100.0)
        cache.seen_before("a", 0.0)
        cache.seen_before("b", 0.0)
        cache.seen_before("c", 0.0)  # evicts "a"
        assert not cache.contains("a", 0.0)
        assert cache.contains("b", 0.0)
        assert cache.contains("c", 0.0)

    def test_contains_is_pure(self):
        cache = DataCache()
        assert not cache.contains("k", 0.0)
        assert not cache.contains("k", 0.0)
        cache.insert("k", 0.0)
        assert cache.contains("k", 0.0)

    def test_hits_misses_counted(self):
        cache = DataCache()
        cache.seen_before("k", 0.0)
        cache.seen_before("k", 0.0)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DataCache(capacity=0)

    def test_clear(self):
        cache = DataCache()
        cache.insert("k", 0.0)
        cache.clear()
        assert len(cache) == 0


class TestGradientTable:
    def test_entry_for_memoizes_by_digest(self):
        table = GradientTable()
        a = table.entry_for(light_interest())
        b = table.entry_for(light_interest())
        assert a is b
        assert len(table) == 1

    def test_gradient_update_and_expiry(self):
        table = GradientTable()
        entry = table.entry_for(light_interest())
        entry.update_gradient(neighbor=7, now=0.0, timeout=10.0)
        assert entry.active_gradient_neighbors(5.0) == [7]
        assert entry.active_gradient_neighbors(11.0) == []

    def test_gradient_refresh_extends(self):
        table = GradientTable()
        entry = table.entry_for(light_interest())
        entry.update_gradient(7, now=0.0, timeout=10.0)
        entry.update_gradient(7, now=8.0, timeout=10.0)
        assert entry.active_gradient_neighbors(15.0) == [7]

    def test_matching_data_requires_demand(self):
        table = GradientTable()
        entry = table.entry_for(light_interest())
        assert table.matching_data(light_data(), now=0.0) == []
        entry.update_gradient(7, now=0.0, timeout=10.0)
        assert table.matching_data(light_data(), now=1.0) == [entry]
        # Expired gradient: no demand again.
        assert table.matching_data(light_data(), now=20.0) == []

    def test_local_sink_is_demand(self):
        table = GradientTable()
        entry = table.entry_for(light_interest())
        entry.local_sink = True
        assert table.matching_data(light_data(), now=0.0) == [entry]

    def test_matching_respects_attributes(self):
        table = GradientTable()
        entry = table.entry_for(light_interest())
        entry.local_sink = True
        audio = AttributeVector.builder().actual(Key.TYPE, "audio").build()
        assert table.matching_data(audio, now=0.0) == []

    def test_reinforce_and_unreinforce(self):
        table = GradientTable()
        entry = table.entry_for(light_interest())
        entry.reinforce(data_origin=3, neighbor=7, now=0.0, timeout=10.0)
        assert entry.reinforced_neighbors(3, now=1.0) == [7]
        assert entry.reinforced_neighbors(4, now=1.0) == []
        assert entry.unreinforce(3, 7)
        assert entry.reinforced_neighbors(3, now=1.0) == []
        assert not entry.unreinforce(3, 7)

    def test_reinforced_expiry(self):
        table = GradientTable()
        entry = table.entry_for(light_interest())
        entry.reinforce(3, 7, now=0.0, timeout=10.0)
        assert entry.reinforced_neighbors(3, now=11.0) == []

    def test_note_exploratory_first_copy_only(self):
        table = GradientTable()
        entry = table.entry_for(light_interest())
        assert entry.note_exploratory(3, (3, 100), neighbor=7, now=0.0)
        assert not entry.note_exploratory(3, (3, 100), neighbor=8, now=0.1)
        assert entry.upstream_neighbor(3) == 7
        # New generation moves the pointer.
        assert entry.note_exploratory(3, (3, 200), neighbor=8, now=1.0)
        assert entry.upstream_neighbor(3) == 8

    def test_sweep_drops_dead_entries(self):
        table = GradientTable()
        entry = table.entry_for(light_interest())
        entry.update_gradient(7, now=0.0, timeout=10.0)
        table.sweep(now=20.0)
        assert len(table) == 0

    def test_sweep_keeps_local_sink(self):
        table = GradientTable()
        entry = table.entry_for(light_interest())
        entry.local_sink = True
        table.sweep(now=20.0)
        assert len(table) == 1


class TestFilterMatching:
    def test_empty_attrs_match_everything(self):
        filt = Filter(attrs=AttributeVector(), priority=100, callback=lambda m, h: None)
        msg = make_data(light_data(), origin=1, exploratory=False)
        assert filt.matches(msg)

    def test_class_selective_filter(self):
        attrs = AttributeVector.builder().eq(Key.CLASS, int(ClassValue.INTEREST)).build()
        filt = Filter(attrs=attrs, priority=100, callback=lambda m, h: None)
        assert filt.matches(make_interest(light_interest(), origin=1))
        assert not filt.matches(make_data(light_data(), origin=1, exploratory=False))

    def test_type_selective_filter(self):
        attrs = AttributeVector.builder().eq(Key.TYPE, "light").build()
        filt = Filter(attrs=attrs, priority=100, callback=lambda m, h: None)
        assert filt.matches(make_data(light_data(), origin=1, exploratory=False))
        audio = AttributeVector.builder().actual(Key.TYPE, "audio").build()
        assert not filt.matches(make_data(audio, origin=1, exploratory=False))

    def test_priority_bounds(self):
        with pytest.raises(ValueError):
            Filter(attrs=AttributeVector(), priority=0, callback=lambda m, h: None)
        with pytest.raises(ValueError):
            Filter(attrs=AttributeVector(), priority=255, callback=lambda m, h: None)

    def test_gradient_priority_constant(self):
        assert 1 <= GRADIENT_FILTER_PRIORITY <= 254
