"""End-to-end tests for the disruption scenarios: the partitioned grid
and the 2-partition data mule."""

import pytest

from repro.dtn.scenario import dtn_run, mule_run, partition_windows


class TestPartitionWindows:
    def test_duty_cycle_windows(self):
        windows = partition_windows(30.0, 260.0, duty=0.6, period=50.0)
        assert windows == [(30.0, 60.0), (80.0, 110.0), (130.0, 160.0),
                           (180.0, 210.0)]
        # Every window leaves the heal tail intact.
        assert all(until <= 230.0 for _, until in windows)

    def test_zero_duty_means_no_windows(self):
        assert partition_windows(30.0, 260.0, duty=0.0, period=50.0) == []


class TestMule:
    """Endpoints never share a connected component until the final
    heal: only carried custody can deliver."""

    def test_baseline_cannot_cross_the_gap(self):
        result = mule_run(seed=1, custody=False)
        assert result["delivered"] == 0
        assert result["invariants_ok"]
        # Every lost block still has a cause on record.
        assert result["unattributed"] == 0
        assert sum(result["attribution"].values()) == result["offered"]

    def test_custody_carries_blocks_across(self):
        baseline = mule_run(seed=1, custody=False)
        armed = mule_run(seed=1, custody=True)
        assert armed["invariants_ok"], armed["violations"][:3]
        # The acceptance bar: at least 2x the disrupted baseline.
        assert armed["delivered"] >= max(1, 2 * max(1, baseline["delivered"]))
        # Delivery happened *while* the endpoints were partitioned —
        # proof the mule carried custody over the gap, not just that
        # the final heal let traffic through.
        assert armed["delivery_during_partition"] > 0
        assert armed["unattributed"] == 0
        # The carrier handoff machinery actually engaged.
        stats = armed["custody_stats"]
        assert stats["accepted"] > 0
        assert stats["beacons"] > 0
        assert stats["custody_acks"] > 0

    def test_mule_replay_is_deterministic(self):
        assert mule_run(seed=4, custody=True) == mule_run(
            seed=4, custody=True
        )


class TestGrid:
    def test_custody_does_not_hurt_the_healthy_grid(self):
        result = dtn_run(seed=1, duty=0.0, custody=True)
        assert result["completed"]
        assert result["delivered"] == result["offered"]
        assert result["invariants_ok"], result["violations"][:3]

    def test_disrupted_grid_custody_vs_baseline(self):
        baseline = dtn_run(seed=1, duty=0.6, custody=False)
        armed = dtn_run(seed=1, duty=0.6, custody=True)
        for result in (baseline, armed):
            assert result["invariants_ok"], result["violations"][:3]
            assert result["unattributed"] == 0
            lost = result["offered"] - result["delivered"]
            assert sum(result["attribution"].values()) == lost
        assert armed["delivered"] >= baseline["delivered"]
        assert armed["custody_stats"]["accepted"] > 0

    def test_dtn_off_is_bit_identical_to_never_built(self):
        plain = dtn_run(seed=2, duty=0.6, custody=False)
        disabled = dtn_run(
            seed=2, duty=0.6, custody=False, install_disabled=True
        )
        assert plain == disabled

    def test_flight_recorder_dump(self, tmp_path):
        path = tmp_path / "dtn-flight.jsonl"
        result = dtn_run(
            seed=1, duty=0.6, duration=120.0, custody=True,
            flight_recorder=str(path),
        )
        info = result["flight_recorder"]
        assert info["path"] == str(path)
        assert info["records"] > 0
        assert path.exists()
