"""BoundaryIndex: cross-cut audibility queries for the sharded kernel.

The index answers, for an arbitrary spatial cut of the node set into
*owned* and *foreign* halves, which owned transmitters must export
(some foreign node may hear them) and which foreign transmitters need
ghosts (some owned node may hear them).  Correctness is defined against
brute force over ``link_prr_bound``; these tests sweep both rebuild
paths (grid-cell bucketing for distance models, the full cross product
for table models) and the epoch invalidation contract under mobility.
"""

import pytest

from repro.radio import (
    DistancePropagation,
    TablePropagation,
    Topology,
)
from repro.radio.neighborhood import BoundaryIndex


def brute_force_cut(propagation, owned, foreign):
    """Reference sets straight from link_prr_bound, both directions."""
    senders = {
        o for o in owned
        if any(propagation.link_prr_bound(o, f) > 0.0 for f in foreign)
    }
    receivers = {
        o for o in owned
        if any(propagation.link_prr_bound(f, o) > 0.0 for f in foreign)
    }
    return senders, receivers


def line_topology(n, spacing):
    topo = Topology()
    for i in range(n):
        topo.add_node(i, i * spacing, 0.0)
    return topo


def grid_topology(columns, rows, spacing):
    topo = Topology()
    for r in range(rows):
        for c in range(columns):
            topo.add_node(r * columns + c, c * spacing, r * spacing)
    return topo


class TestCutAudibility:
    def test_matches_brute_force_on_a_line_cut(self):
        topo = line_topology(10, 20.0)
        prop = DistancePropagation(topo, seed=1)
        owned, foreign = [0, 1, 2, 3, 4], [5, 6, 7, 8, 9]
        index = BoundaryIndex(prop, owned, foreign)
        senders, receivers = brute_force_cut(prop, owned, foreign)
        assert index.boundary_senders() == senders
        assert index.boundary_receivers() == receivers
        # Only nodes near the cut are audible across it; interior nodes
        # must be excluded or exports degenerate to broadcast-all.
        assert 0 not in index.boundary_senders()
        assert 4 in index.boundary_senders()

    @pytest.mark.parametrize("cut_column", [1, 3, 5])
    def test_arbitrary_vertical_cuts_on_a_grid(self, cut_column):
        topo = grid_topology(7, 4, 22.0)
        prop = DistancePropagation(topo, seed=2)
        owned = [n for n in topo.node_ids() if n % 7 <= cut_column]
        foreign = [n for n in topo.node_ids() if n % 7 > cut_column]
        index = BoundaryIndex(prop, owned, foreign)
        senders, receivers = brute_force_cut(prop, owned, foreign)
        assert index.boundary_senders() == senders
        assert index.boundary_receivers() == receivers

    def test_interleaved_cut_is_supported(self):
        """The cut need not be spatially contiguous: k-means partitions
        and mid-run mobility produce ragged ownership."""
        topo = grid_topology(6, 3, 18.0)
        prop = DistancePropagation(topo, seed=3)
        owned = [n for n in topo.node_ids() if n % 2 == 0]
        foreign = [n for n in topo.node_ids() if n % 2 == 1]
        index = BoundaryIndex(prop, owned, foreign)
        senders, receivers = brute_force_cut(prop, owned, foreign)
        assert index.boundary_senders() == senders
        assert index.boundary_receivers() == receivers

    def test_table_model_falls_back_to_cross_product(self):
        prop = TablePropagation({
            (0, 2): 1.0,          # owned -> foreign
            (3, 1): 0.5,          # foreign -> owned
            (0, 1): 1.0,          # owned -> owned (not across the cut)
        })
        index = BoundaryIndex(prop, [0, 1], [2, 3])
        assert index.boundary_senders() == {0}
        assert index.boundary_receivers() == {1}
        assert index.listeners_across(3) == [1]

    def test_listeners_across_serves_both_sides(self):
        topo = line_topology(6, 20.0)
        prop = DistancePropagation(topo, seed=4)
        owned, foreign = [0, 1, 2], [3, 4, 5]
        index = BoundaryIndex(prop, owned, foreign)
        for src in owned:
            expected = sorted(
                f for f in foreign
                if prop.link_prr_bound(src, f) > 0.0
            )
            assert index.listeners_across(src) == expected
        for src in foreign:
            expected = sorted(
                o for o in owned
                if prop.link_prr_bound(src, o) > 0.0
            )
            assert index.listeners_across(src) == expected

    def test_interior_node_has_no_listeners_across(self):
        topo = line_topology(12, 25.0)
        prop = DistancePropagation(topo, seed=5)
        index = BoundaryIndex(prop, list(range(6)), list(range(6, 12)))
        assert index.listeners_across(0) == []


class TestEpochInvalidation:
    def test_move_across_the_cut_updates_the_sets(self):
        """A node walking toward the cut becomes audible across it; the
        index must notice via the propagation epoch, with no explicit
        invalidation call from the caller."""
        topo = line_topology(8, 24.0)
        prop = DistancePropagation(topo, seed=6)
        owned, foreign = [0, 1, 2, 3], [4, 5, 6, 7]
        index = BoundaryIndex(prop, owned, foreign)
        # Node 0 starts far from the cut (x=0, cut near x=84).
        assert 0 not in index.boundary_senders()
        rebuilds_before = index.rebuilds
        topo.move_node(0, 24.0 * 3.5, 0.0)   # right next to node 4
        senders, receivers = brute_force_cut(prop, owned, foreign)
        assert 0 in senders
        assert index.boundary_senders() == senders
        assert index.boundary_receivers() == receivers
        assert index.rebuilds == rebuilds_before + 1

    def test_no_rebuild_while_epoch_is_stable(self):
        topo = line_topology(6, 20.0)
        prop = DistancePropagation(topo, seed=7)
        index = BoundaryIndex(prop, [0, 1, 2], [3, 4, 5])
        index.boundary_senders()
        rebuilds = index.rebuilds
        checks = index.pair_checks
        for _ in range(5):
            index.boundary_senders()
            index.boundary_receivers()
            index.listeners_across(0)
        assert index.rebuilds == rebuilds
        assert index.pair_checks == checks

    def test_move_away_shrinks_the_sets(self):
        topo = line_topology(6, 20.0)
        prop = DistancePropagation(topo, seed=8)
        owned, foreign = [0, 1, 2], [3, 4, 5]
        index = BoundaryIndex(prop, owned, foreign)
        assert 2 in index.boundary_senders()
        topo.move_node(2, -500.0, 0.0)
        assert 2 not in index.boundary_senders()
        senders, receivers = brute_force_cut(prop, owned, foreign)
        assert index.boundary_senders() == senders
        assert index.boundary_receivers() == receivers


class TestBucketedRebuildCost:
    def test_pair_checks_stay_near_the_boundary(self):
        """With a spatial bound the rebuild probes O(boundary) pairs,
        not O(owned x foreign) — the property that keeps 10k-node
        sharded rebuilds affordable under mobility."""
        topo = grid_topology(20, 20, 25.0)   # 400 nodes
        prop = DistancePropagation(topo, seed=9)
        owned = [n for n in topo.node_ids() if n % 20 < 10]
        foreign = [n for n in topo.node_ids() if n % 20 >= 10]
        index = BoundaryIndex(prop, owned, foreign)
        index.boundary_senders()
        full_cross_product = len(owned) * len(foreign)
        assert index.pair_checks < full_cross_product / 4
        # And the pruned probe set still reproduces brute force.
        senders, receivers = brute_force_cut(prop, owned, foreign)
        assert index.boundary_senders() == senders
        assert index.boundary_receivers() == receivers


class TestValidation:
    def test_overlapping_cut_is_rejected(self):
        topo = line_topology(4, 10.0)
        prop = DistancePropagation(topo, seed=1)
        with pytest.raises(ValueError, match="not a partition"):
            BoundaryIndex(prop, [0, 1, 2], [2, 3])

    def test_non_fast_path_model_is_rejected(self):
        class Opaque:
            pass

        with pytest.raises(ValueError, match="fast-path"):
            BoundaryIndex(Opaque(), [0], [1])
