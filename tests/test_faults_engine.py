"""Tests for the fault overlay and the FaultEngine's injection paths."""

import math

import pytest

from repro.core import DiffusionConfig
from repro.faults import (
    ClockSkew,
    EnergyBrownout,
    FaultEngine,
    FaultOverlayPropagation,
    FaultPlan,
    FragmentCorruption,
    LinkFlap,
    NodeCrash,
    Partition,
)
from repro.radio import DistancePropagation, Topology
from repro.sim import TraceCollector
from repro.testbed import SensorNetwork


def line_topology(n=4, spacing=12.0):
    topo = Topology()
    for i in range(n):
        topo.add_node(i, i * spacing, 0.0)
    return topo


def tight_config(**overrides):
    base = dict(
        interest_interval=10.0,
        interest_jitter=0.5,
        gradient_timeout=25.0,
        exploratory_interval=8.0,
        reinforced_timeout=20.0,
        reinforcement_jitter=0.3,
    )
    base.update(overrides)
    return DiffusionConfig(**base)


class TestOverlay:
    def _overlay(self):
        base = DistancePropagation(
            line_topology(), full_range=20.0, max_range=30.0, asymmetry=0.0
        )
        return FaultOverlayPropagation(base)

    def test_blocked_link_reads_zero_and_restores(self):
        overlay = self._overlay()
        assert overlay.link_prr(0, 1, 0.0) == 1.0
        overlay.block_link(0, 1)
        assert overlay.link_prr(0, 1, 0.0) == 0.0
        assert overlay.link_prr(1, 0, 0.0) == 0.0  # symmetric default
        overlay.unblock_link(0, 1)
        assert overlay.link_prr(0, 1, 0.0) == 1.0

    def test_asymmetric_block_cuts_one_direction(self):
        overlay = self._overlay()
        overlay.block_link(0, 1, symmetric=False)
        assert overlay.link_prr(0, 1, 0.0) == 0.0
        assert overlay.link_prr(1, 0, 0.0) == 1.0

    def test_partition_cuts_cross_group_links_only(self):
        overlay = self._overlay()
        overlay.set_partition([(0, 1), (2, 3)])
        assert overlay.link_prr(1, 2, 0.0) == 0.0
        assert overlay.link_prr(0, 1, 0.0) == 1.0
        assert overlay.link_prr(2, 3, 0.0) == 1.0
        overlay.clear_partition()
        assert overlay.link_prr(1, 2, 0.0) == 1.0

    def test_unlisted_nodes_straddle_partition(self):
        overlay = self._overlay()
        overlay.set_partition([(0,), (3,)])
        assert overlay.link_prr(0, 3, 0.0) == 0.0
        # Node 1 is in no group: it hears both sides.
        assert overlay.link_prr(0, 1, 0.0) == 1.0
        assert overlay.link_prr(1, 2, 0.0) == 1.0

    def test_every_mutation_bumps_epoch(self):
        overlay = self._overlay()
        epochs = [overlay.prr_epoch()]
        overlay.block_link(0, 1)
        epochs.append(overlay.prr_epoch())
        overlay.unblock_link(0, 1)
        epochs.append(overlay.prr_epoch())
        overlay.set_partition([(0,), (1,)])
        epochs.append(overlay.prr_epoch())
        overlay.clear_partition()
        epochs.append(overlay.prr_epoch())
        assert len(set(epochs)) == len(epochs)
        assert overlay.changes == 4

    def test_fast_path_bound_and_window_honor_cut(self):
        overlay = self._overlay()
        overlay.block_link(0, 1)
        assert overlay.link_prr_bound(0, 1) == 0.0
        prr, expiry = overlay.link_prr_window(0, 1, 0.0)
        assert prr == 0.0 and expiry == math.inf
        assert overlay.link_prr_bound(1, 2) > 0.0

    def test_fast_path_unsupported_base_propagates(self):
        class SlowModel:
            def link_prr(self, src, dst, now):
                return 1.0

        overlay = FaultOverlayPropagation(SlowModel())
        with pytest.raises(AttributeError):
            overlay.prr_epoch()


class TestEngine:
    def _network(self, **config_overrides):
        return SensorNetwork(
            line_topology(), seed=5, config=tight_config(**config_overrides)
        )

    def test_link_plan_installs_overlay_and_rebuilds_index(self):
        net = self._network()
        original = net.propagation
        engine = FaultEngine(
            net, FaultPlan((LinkFlap(a=0, b=1, at=5.0, down=2.0),))
        )
        assert isinstance(net.propagation, FaultOverlayPropagation)
        assert net.propagation.base is original
        assert net.channel.propagation is net.propagation
        assert net.channel.index is not None
        assert net.channel.index.propagation is engine.overlay

    def test_crash_only_plan_skips_overlay(self):
        net = self._network()
        engine = FaultEngine(net, FaultPlan((NodeCrash(node=1, at=5.0),)))
        assert engine.overlay is None
        assert not isinstance(net.propagation, FaultOverlayPropagation)

    def test_invalid_plan_rejected_at_construction(self):
        from repro.faults import PlanError

        net = self._network()
        with pytest.raises(PlanError):
            FaultEngine(net, FaultPlan((NodeCrash(node=77, at=1.0),)))

    def test_flap_timeline_alternates_and_traces(self):
        net = self._network()
        engine = FaultEngine(
            net,
            FaultPlan(
                (LinkFlap(a=0, b=1, at=5.0, down=3.0, flaps=3, period=8.0),)
            ),
        )
        with TraceCollector(net.trace, "fault.inject") as injects:
            net.run(until=40.0)
        assert [e["phase"] for e in engine.timeline] == [
            "inject", "heal", "inject", "heal", "inject", "heal",
        ]
        assert [e["t"] for e in engine.timeline] == [
            5.0, 8.0, 13.0, 16.0, 21.0, 24.0,
        ]
        assert len(injects.records) == 3

    def test_partition_blocks_and_heals(self):
        net = self._network()
        engine = FaultEngine(
            net,
            FaultPlan(
                (Partition(groups=((0, 1), (2, 3)), at=5.0, heal_at=15.0),)
            ),
        )
        net.run(until=10.0)
        assert engine.overlay.is_cut(1, 2)
        assert not engine.overlay.is_cut(0, 1)
        net.run(until=20.0)
        assert not engine.overlay.is_cut(1, 2)

    def test_clock_skew_steps_engine_clock(self):
        net = self._network()
        engine = FaultEngine(
            net,
            FaultPlan(
                (ClockSkew(node=2, at=5.0, offset=1.5, drift_ppm=40.0),)
            ),
        )
        clock = engine.clock(2)
        assert engine.clock(2) is clock  # memoized
        net.run(until=10.0)
        assert clock.offset == pytest.approx(1.5)
        assert clock.drift_ppm == pytest.approx(40.0)
        assert engine.timeline[0]["kind"] == "clock-skew"

    def test_crash_and_reboot_round_trip(self):
        net = self._network()
        engine = FaultEngine(
            net,
            FaultPlan((NodeCrash(node=1, at=5.0, recover_at=12.0),)),
        )
        net.run(until=8.0)
        assert net.stack(1).modem.receive_callback is None
        net.run(until=20.0)
        assert net.stack(1).modem.receive_callback is not None
        phases = [e["phase"] for e in engine.timeline]
        assert phases == ["inject", "heal"]
        assert engine.timeline[1]["clear_state"] is True

    def test_corruption_drops_fragments_and_heals(self):
        from repro import AttributeVector, Key

        net = self._network()
        engine = FaultEngine(
            net,
            FaultPlan(
                (FragmentCorruption(node=1, at=2.0, duration=20.0, rate=1.0),)
            ),
        )
        # Interest flooding from a sink is enough inbound traffic for
        # node 1 to lose fragments to the corruption window.
        net.api(0).subscribe(
            AttributeVector.builder().eq(Key.TYPE, "t").build(),
            lambda attrs, msg: None,
        )
        with TraceCollector(net.trace, "path.drop") as drops:
            net.run(until=30.0)
        assert engine.fragments_corrupted > 0
        assert net.stack(1).frag.inbound_filter is None  # healed
        reasons = {r.data["reason"] for r in drops.records}
        assert "fault-corruption" in reasons

    def test_brownout_defers_instead_of_raising(self):
        # A 10% duty cycle with traffic flowing through the MAC: any
        # transmission attempt during a sleep slice must defer to the
        # wake time, never hit the modem's sleeping guard.
        net = self._network()
        engine = FaultEngine(
            net,
            FaultPlan(
                (EnergyBrownout(node=1, at=5.0, duration=15.0,
                                duty_cycle=0.1, period=1.0),)
            ),
        )
        net.run(until=30.0)
        mac = net.stack(1).mac
        assert net.stack(1).modem.sleeping is False
        assert "_transmit_head" not in mac.__dict__  # shadow removed
        assert engine.timeline[-1]["phase"] == "heal"

    def test_timeline_replays_identically(self):
        def run():
            net = self._network()
            engine = FaultEngine(
                net,
                FaultPlan(
                    (
                        NodeCrash(node=1, at=5.0, recover_at=12.0),
                        LinkFlap(a=2, b=3, at=8.0, down=4.0, flaps=2),
                        FragmentCorruption(node=2, at=3.0, duration=10.0,
                                           rate=0.7),
                    )
                ),
            )
            net.run(until=30.0)
            return engine.timeline, engine.fragments_corrupted

        assert run() == run()
