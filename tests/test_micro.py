"""Tests for micro-diffusion and the tiered gateway."""

import pytest

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.micro import (
    MICRO_DATA_BYTES,
    MicroConfig,
    MicroDiffusionNode,
    MicroGateway,
    MicroMessage,
    MicroMessageKind,
    TagRegistry,
    state_bytes,
)
from repro.micro.footprint import footprint_report, node_state_bytes
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.sim import Simulator
from repro.testbed import IdealNetwork

PHOTO_TAG = 17


def build_micro_net(n, pairs, config=None):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.005)
    motes = {}
    for i in range(n):
        transport = net.add_node(i)
        motes[i] = MicroDiffusionNode(sim, i, transport, config=config)
    for a, b in pairs:
        net.connect(a, b)
    return sim, net, motes


class TestMicroMessage:
    def test_nbytes_small(self):
        msg = MicroMessage(MicroMessageKind.DATA, tag=1, origin=2, seq=3,
                           payload=b"\x01\x02")
        assert msg.nbytes == MicroMessage.HEADER_BYTES + 2
        assert msg.nbytes <= 30  # fits mote radio packets

    def test_tag_bounds(self):
        with pytest.raises(ValueError):
            MicroMessage(MicroMessageKind.DATA, tag=2**16, origin=0, seq=0)

    def test_cache_key_two_bytes(self):
        msg = MicroMessage(MicroMessageKind.DATA, tag=1, origin=0xAB, seq=0xCD)
        assert 0 <= msg.cache_key() < 2**16


class TestMicroProtocol:
    def test_interest_sets_gradients_and_data_flows(self):
        sim, net, motes = build_micro_net(4, [(0, 1), (1, 2), (2, 3)])
        received = []
        motes[0].subscribe(PHOTO_TAG, received.append)
        sim.schedule(1.0, motes[3].send, PHOTO_TAG, b"\x2A")
        sim.run(until=5.0)
        assert len(received) == 1
        assert received[0].payload == b"\x2A"
        assert motes[3].active_gradients(PHOTO_TAG) == [2]

    def test_data_without_interest_goes_nowhere(self):
        sim, net, motes = build_micro_net(3, [(0, 1), (1, 2)])
        motes[2].send(PHOTO_TAG, b"\x01")
        sim.run(until=2.0)
        assert motes[1].stats_tx_messages == 0

    def test_duplicate_suppression_on_ring(self):
        sim, net, motes = build_micro_net(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        received = []
        motes[0].subscribe(PHOTO_TAG, received.append)
        sim.schedule(1.0, motes[2].send, PHOTO_TAG, b"\x01")
        sim.run(until=10.0)
        assert len(received) == 1

    def test_gradient_table_bounded_with_eviction(self):
        config = MicroConfig(max_gradients=2)
        sim, net, motes = build_micro_net(1, [], config=config)
        mote = motes[0]
        mote._update_gradient(1, neighbor=10)
        mote._update_gradient(2, neighbor=11)
        mote._update_gradient(3, neighbor=12)
        assert len(mote.gradients) == 2
        assert mote.stats_gradient_evictions == 1

    def test_cache_bounded(self):
        config = MicroConfig(cache_packets=3)
        sim, net, motes = build_micro_net(1, [], config=config)
        mote = motes[0]
        for seq in range(10):
            mote._note_seen(
                MicroMessage(MicroMessageKind.DATA, tag=1, origin=0, seq=seq)
            )
        assert len(mote.cache) == 3

    def test_unsubscribe_stops_interest_refresh(self):
        sim, net, motes = build_micro_net(2, [(0, 1)])
        motes[0].subscribe(PHOTO_TAG, lambda m: None)
        sim.run(until=1.0)
        motes[0].unsubscribe(PHOTO_TAG)
        before = motes[0].stats_tx_messages
        sim.run(until=200.0)
        assert motes[0].stats_tx_messages == before

    def test_interest_refresh_periodic(self):
        config = MicroConfig(interest_interval=10.0)
        sim, net, motes = build_micro_net(2, [(0, 1)], config=config)
        motes[0].subscribe(PHOTO_TAG, lambda m: None)
        sim.run(until=35.0)
        # Interests at t=0, 10, 20, 30.
        assert motes[0].stats_tx_messages == 4

    def test_multihop_forwarding_unicast_single_gradient(self):
        sim, net, motes = build_micro_net(3, [(0, 1), (1, 2)])
        received = []
        motes[0].subscribe(PHOTO_TAG, received.append)
        sim.schedule(1.0, motes[2].send, PHOTO_TAG, b"")
        sim.run(until=5.0)
        assert len(received) == 1


class TestFootprint:
    def test_default_config_fits_paper_data_budget(self):
        assert state_bytes(MicroConfig()) <= MICRO_DATA_BYTES

    def test_default_budget_value(self):
        # 5 gradients * 6 + 10 cache * 2 + 1 sub * 4 + 12 = 66 bytes.
        assert state_bytes(MicroConfig()) == 66

    def test_live_node_within_budget(self):
        sim, net, motes = build_micro_net(1, [])
        motes[0].subscribe(PHOTO_TAG, lambda m: None)
        assert node_state_bytes(motes[0]) <= MICRO_DATA_BYTES

    def test_footprint_report(self):
        report = footprint_report()
        assert report["within_paper_budget"]
        assert report["data_reduction_vs_full"] > 50  # 8KB vs tens of bytes

    def test_bigger_config_exceeds_budget(self):
        big = MicroConfig(max_gradients=50, cache_packets=100)
        assert state_bytes(big) > MICRO_DATA_BYTES


class TestGateway:
    def _build_tiered(self):
        """Full tier: sink 0 - gateway 1; mote tier: gateway 1 - motes 2,3."""
        sim = Simulator()
        full_net = IdealNetwork(sim, delay=0.01)
        mote_net = IdealNetwork(sim, delay=0.005)
        # Full-diffusion side.
        t0 = full_net.add_node(0)
        t1 = full_net.add_node(1)
        full_net.connect(0, 1)
        node0 = DiffusionNode(sim, 0, t0,
                              config=DiffusionConfig(reinforcement_jitter=0.05))
        node1 = DiffusionNode(sim, 1, t1,
                              config=DiffusionConfig(reinforcement_jitter=0.05))
        api0, api1 = DiffusionRouting(node0), DiffusionRouting(node1)
        # Mote side: gateway's mote interface is id 1 on the mote net.
        m1 = mote_net.add_node(1)
        m2 = mote_net.add_node(2)
        m3 = mote_net.add_node(3)
        mote_net.connect(1, 2)
        mote_net.connect(2, 3)
        micro1 = MicroDiffusionNode(sim, 1, m1)
        mote2 = MicroDiffusionNode(sim, 2, m2)
        mote3 = MicroDiffusionNode(sim, 3, m3)
        registry = TagRegistry()
        registry.register(
            PHOTO_TAG,
            interest_attrs=AttributeVector.builder().eq(Key.TYPE, "photo").build(),
            data_attrs=AttributeVector.builder().actual(Key.TYPE, "photo").build(),
        )
        gateway = MicroGateway(api1, micro1, registry)
        return sim, api0, gateway, mote2, mote3

    def test_interest_bridged_down_and_data_up(self):
        sim, api0, gateway, mote2, mote3 = self._build_tiered()
        received = []
        sub = AttributeVector.builder().eq(Key.TYPE, "photo").build()
        api0.subscribe(sub, lambda attrs, msg: received.append(attrs))
        # Give the interest time to flood down into the mote tier.
        sim.schedule(2.0, mote3.send, PHOTO_TAG, b"\x10")
        sim.run(until=10.0)
        assert gateway.interests_bridged == 1
        assert gateway.data_bridged == 1
        assert len(received) == 1
        assert received[0].value_of(Key.INSTANCE) == "mote-3"

    def test_unrelated_interest_not_bridged(self):
        sim, api0, gateway, mote2, mote3 = self._build_tiered()
        sub = AttributeVector.builder().eq(Key.TYPE, "seismic").build()
        api0.subscribe(sub, lambda attrs, msg: None)
        sim.run(until=5.0)
        assert gateway.interests_bridged == 0

    def test_registry_rejects_duplicate_tags(self):
        registry = TagRegistry()
        attrs = AttributeVector.builder().eq(Key.TYPE, "photo").build()
        data = AttributeVector.builder().actual(Key.TYPE, "photo").build()
        registry.register(1, attrs, data)
        with pytest.raises(ValueError):
            registry.register(1, attrs, data)

    def test_registry_tag_lookup_by_interest(self):
        registry = TagRegistry()
        registry.register(
            5,
            interest_attrs=AttributeVector.builder().eq(Key.TYPE, "photo").build(),
            data_attrs=AttributeVector.builder().actual(Key.TYPE, "photo").build(),
        )
        probe = AttributeVector.builder().eq(Key.TYPE, "photo").build()
        assert registry.tag_for_interest(probe) == 5
        other = AttributeVector.builder().eq(Key.TYPE, "audio").build()
        assert registry.tag_for_interest(other) is None


class TestMicroFilters:
    """Section 4.3: micro-diffusion supports 'only limited filters' —
    one per-tag hook that can absorb or rewrite data."""

    def test_filter_sees_and_passes_data(self):
        sim, net, motes = build_micro_net(3, [(0, 1), (1, 2)])
        seen = []
        motes[1].add_filter(PHOTO_TAG, lambda m: (seen.append(m), m)[1])
        received = []
        motes[0].subscribe(PHOTO_TAG, received.append)
        sim.schedule(1.0, motes[2].send, PHOTO_TAG, b"\x01")
        sim.run(until=5.0)
        assert len(seen) == 1
        assert len(received) == 1

    def test_filter_can_absorb(self):
        sim, net, motes = build_micro_net(3, [(0, 1), (1, 2)])
        motes[1].add_filter(PHOTO_TAG, lambda m: None)
        received = []
        motes[0].subscribe(PHOTO_TAG, received.append)
        sim.schedule(1.0, motes[2].send, PHOTO_TAG, b"\x01")
        sim.run(until=5.0)
        assert received == []

    def test_filter_can_rewrite_payload(self):
        from dataclasses import replace as dc_replace

        sim, net, motes = build_micro_net(3, [(0, 1), (1, 2)])
        motes[1].add_filter(
            PHOTO_TAG, lambda m: dc_replace(m, payload=b"\xFF")
        )
        received = []
        motes[0].subscribe(PHOTO_TAG, received.append)
        sim.schedule(1.0, motes[2].send, PHOTO_TAG, b"\x01")
        sim.run(until=5.0)
        assert received[0].payload == b"\xFF"

    def test_one_filter_per_tag(self):
        sim, net, motes = build_micro_net(1, [])
        motes[0].add_filter(PHOTO_TAG, lambda m: m)
        with pytest.raises(ValueError):
            motes[0].add_filter(PHOTO_TAG, lambda m: m)
        assert motes[0].remove_filter(PHOTO_TAG)
        assert not motes[0].remove_filter(PHOTO_TAG)

    def test_mote_side_suppression_filter(self):
        """A dedup-by-payload filter on the mote tier — the in-network
        aggregation use case the paper plans for motes."""
        sim, net, motes = build_micro_net(4, [(0, 1), (1, 2), (1, 3)])
        seen_payloads = set()

        def suppress(message):
            if message.payload in seen_payloads:
                return None
            seen_payloads.add(message.payload)
            return message

        motes[1].add_filter(PHOTO_TAG, suppress)
        received = []
        motes[0].subscribe(PHOTO_TAG, received.append)
        sim.schedule(1.0, motes[2].send, PHOTO_TAG, b"\x2A")
        sim.schedule(1.5, motes[3].send, PHOTO_TAG, b"\x2A")  # duplicate
        sim.run(until=5.0)
        assert len(received) == 1


class TestCommandBridging:
    """Section 4.3: 'Second-tier nodes will be controlled and their
    filters programmed from these more capable nodes.'"""

    COMMAND_TAG = 99

    def _build_with_commands(self):
        sim = Simulator()
        full_net = IdealNetwork(sim, delay=0.01)
        mote_net = IdealNetwork(sim, delay=0.005)
        t0 = full_net.add_node(0)
        t1 = full_net.add_node(1)
        full_net.connect(0, 1)
        config = DiffusionConfig(reinforcement_jitter=0.05)
        api0 = DiffusionRouting(DiffusionNode(sim, 0, t0, config=config))
        api1 = DiffusionRouting(DiffusionNode(sim, 1, t1, config=config))
        gw_micro = MicroDiffusionNode(sim, 1, mote_net.add_node(1))
        mote2 = MicroDiffusionNode(sim, 2, mote_net.add_node(2))
        mote_net.connect(1, 2)
        registry = TagRegistry()
        registry.register_command(
            self.COMMAND_TAG,
            AttributeVector.builder().eq(Key.TYPE, "mote-cmd").build(),
        )
        gateway = MicroGateway(api1, gw_micro, registry)
        return sim, api0, gateway, mote2

    def test_full_tier_command_reaches_mote(self):
        sim, api0, gateway, mote2 = self._build_with_commands()
        commands = []
        mote2.subscribe(self.COMMAND_TAG, commands.append)
        pub = api0.publish(
            AttributeVector.builder().actual(Key.TYPE, "mote-cmd").build()
        )
        from repro.naming import Attribute, Operator

        cmd_attrs = AttributeVector.builder().actual(
            Key.SEQUENCE, 1
        ).build().with_attribute(
            Attribute.blob(Key.PAYLOAD, Operator.IS, b"\x05\x01")
        )
        sim.schedule(2.0, api0.send, pub, cmd_attrs)
        sim.run(until=10.0)
        assert gateway.commands_bridged == 1
        assert len(commands) == 1
        assert commands[0].payload == b"\x05\x01"

    def test_duplicate_command_tag_rejected(self):
        registry = TagRegistry()
        attrs = AttributeVector.builder().eq(Key.TYPE, "mote-cmd").build()
        registry.register_command(1, attrs)
        with pytest.raises(ValueError):
            registry.register_command(1, attrs)

    def test_command_tag_lookup(self):
        registry = TagRegistry()
        registry.register_command(
            7, AttributeVector.builder().eq(Key.TYPE, "mote-cmd").build()
        )
        matching = AttributeVector.builder().actual(Key.TYPE, "mote-cmd").build()
        other = AttributeVector.builder().actual(Key.TYPE, "else").build()
        assert registry.command_tag_for(matching) == 7
        assert registry.command_tag_for(other) is None
