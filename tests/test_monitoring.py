"""Tests for the residual-energy scan application."""

import pytest

from repro.apps.monitoring import (
    EnergyDigest,
    EnergyReporter,
    EnergyScanAggregator,
    EnergyScanSink,
)
from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.energy import EnergyLedger
from repro.sim import Simulator
from repro.testbed import IdealNetwork


def build_scan_net(n, pairs):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01)
    nodes, apis, ledgers = {}, {}, {}
    config = DiffusionConfig(reinforcement_jitter=0.05)
    for i in range(n):
        transport = net.add_node(i)
        nodes[i] = DiffusionNode(sim, i, transport, config=config)
        apis[i] = DiffusionRouting(nodes[i])
        ledgers[i] = EnergyLedger()
    for a, b in pairs:
        net.connect(a, b)
    return sim, net, nodes, apis, ledgers


class TestEnergyDigest:
    def test_single(self):
        d = EnergyDigest.single(5.0)
        assert d.minimum == d.maximum == d.total == 5.0
        assert d.count == 1
        assert d.mean == 5.0

    def test_merge(self):
        a = EnergyDigest.single(2.0)
        b = EnergyDigest.single(8.0)
        merged = a.merge(b)
        assert merged.minimum == 2.0
        assert merged.maximum == 8.0
        assert merged.total == 10.0
        assert merged.count == 2
        assert merged.mean == 5.0

    def test_codec_round_trip(self):
        d = EnergyDigest(minimum=1.5, maximum=9.0, total=20.5, count=4)
        assert EnergyDigest.decode(d.encode()) == d

    def test_empty_mean(self):
        assert EnergyDigest(0, 0, 0, 0).mean == 0.0


class TestEnergyReporter:
    def test_residual_decreases_with_spend(self):
        sim, net, nodes, apis, ledgers = build_scan_net(2, [(0, 1)])
        reporter = EnergyReporter(apis[1], ledgers[1], budget=1000.0)
        first = reporter.residual_energy()
        ledgers[1].record_send(10.0)
        sim.run(until=1.0)
        assert reporter.residual_energy() < first

    def test_invalid_budget(self):
        sim, net, nodes, apis, ledgers = build_scan_net(2, [(0, 1)])
        with pytest.raises(ValueError):
            EnergyReporter(apis[1], ledgers[1], budget=0.0)

    def test_reports_flow_to_sink(self):
        sim, net, nodes, apis, ledgers = build_scan_net(3, [(0, 1), (1, 2)])
        sink = EnergyScanSink(apis[0])
        EnergyReporter(apis[2], ledgers[2], budget=1000.0, interval=5.0)
        sim.run(until=30.0)
        assert sink.digests_received >= 3
        assert sink.network_view is not None
        assert sink.network_view.minimum <= 1000.0


class TestAggregation:
    def test_reports_merged_in_network(self):
        # Star: reporters at 2, 3, 4 behind aggregator 1; sink at 0.
        sim, net, nodes, apis, ledgers = build_scan_net(
            5, [(0, 1), (1, 2), (1, 3), (1, 4)]
        )
        sink = EnergyScanSink(apis[0])
        agg = EnergyScanAggregator(nodes[1], delay=1.0)
        for i, budget in ((2, 100.0), (3, 200.0), (4, 300.0)):
            EnergyReporter(apis[i], ledgers[i], budget=budget, interval=8.0)
        sim.run(until=40.0)
        assert agg.reports_merged > 0
        assert sink.network_view is not None
        # The merged minimum must reflect the poorest node (budget 100).
        assert sink.network_view.minimum <= 100.0
        assert sink.network_view.maximum <= 300.0

    def test_aggregation_reduces_messages_at_sink(self):
        def run(with_aggregator):
            sim, net, nodes, apis, ledgers = build_scan_net(
                5, [(0, 1), (1, 2), (1, 3), (1, 4)]
            )
            sink = EnergyScanSink(apis[0])
            if with_aggregator:
                EnergyScanAggregator(nodes[1], delay=1.0)
            for i in (2, 3, 4):
                EnergyReporter(apis[i], ledgers[i], budget=500.0, interval=8.0)
            sim.run(until=60.0)
            return sink.digests_received

        assert run(True) < run(False)

    def test_digest_counts_cover_all_reporters(self):
        sim, net, nodes, apis, ledgers = build_scan_net(
            4, [(0, 1), (1, 2), (1, 3)]
        )
        sink = EnergyScanSink(apis[0])
        EnergyScanAggregator(nodes[1], delay=1.5)
        for i in (2, 3):
            EnergyReporter(apis[i], ledgers[i], budget=500.0, interval=6.0)
        sim.run(until=30.0)
        assert sink.network_view.count >= 2

    def test_remove_cancels_pending(self):
        sim, net, nodes, apis, ledgers = build_scan_net(3, [(0, 1), (1, 2)])
        agg = EnergyScanAggregator(nodes[1], delay=10.0)
        EnergyScanSink(apis[0])
        EnergyReporter(apis[2], ledgers[2], budget=100.0, interval=3.0)
        sim.schedule(5.0, agg.remove)
        sim.run(until=6.0)
        assert agg._pending is None
