"""End-to-end tests for ``python -m repro trace`` (repro.analysis.tracecli)."""

import json

import pytest

from repro.analysis import tracecli
from repro.analysis.tracelog import load_trace


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One tiny recorded line run shared by the read-only subcommands."""
    out = tmp_path_factory.mktemp("trace") / "run.jsonl"
    rc = tracecli.main([
        "record", "--out", str(out), "--scenario", "line",
        "--nodes", "3", "--duration", "25", "--interval", "4",
        "--seed", "7",
    ])
    assert rc == 0
    return out


class TestRecord:
    def test_writes_jsonl_with_trailing_aggregates(self, recorded):
        records = load_trace(recorded)
        assert records, "the run should emit trace records"
        categories = {r.category for r in records}
        assert "diffusion.tx" in categories
        assert "app.deliver" in categories
        assert "metrics.snapshot" in categories
        assert "kernel.profile" in categories
        # Aggregates come last, after the simulated run.
        assert records[-1].category in ("metrics.snapshot", "kernel.profile")

    def test_every_line_is_valid_json(self, recorded):
        for line in recorded.read_text().splitlines():
            json.loads(line)

    def test_record_prints_summary_line(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        tracecli.main([
            "record", "--out", str(out), "--nodes", "2",
            "--duration", "10", "--seed", "3",
        ])
        stdout = capsys.readouterr().out
        assert "recorded" in stdout and str(out) in stdout


class TestSummarize:
    def test_reports_counts_and_metrics(self, recorded, capsys):
        assert tracecli.main(["summarize", str(recorded)]) == 0
        stdout = capsys.readouterr().out
        assert "records:" in stdout
        assert "by category:" in stdout
        assert "diffusion.tx" in stdout
        assert "metrics:" in stdout
        assert "diffusion.delivered" in stdout


class TestPaths:
    def test_shows_routes_and_loss_table(self, recorded, capsys):
        assert tracecli.main(["paths", str(recorded)]) == 0
        stdout = capsys.readouterr().out
        assert "data messages:" in stdout
        assert "delivered" in stdout
        # Routes render as arrow chains with millisecond latencies.
        assert "ms)->" in stdout
        assert "loss attribution" in stdout

    def test_all_flag_includes_undelivered(self, recorded, capsys):
        assert tracecli.main(["paths", str(recorded), "--all"]) == 0
        assert "data messages:" in capsys.readouterr().out


class TestTimeline:
    def test_follows_one_trace_id(self, recorded, capsys):
        records = load_trace(recorded)
        trace_id = next(
            r.data["trace"] for r in records if r.category == "app.deliver"
        )
        assert tracecli.main(["timeline", str(recorded), trace_id]) == 0
        stdout = capsys.readouterr().out
        assert "path.origin" in stdout
        assert "app.deliver" in stdout
        assert "delivered at node" in stdout

    def test_unknown_trace_id_fails(self, recorded, capsys):
        assert tracecli.main(["timeline", str(recorded), "999.999"]) == 1
        assert "no records mention" in capsys.readouterr().err


class TestProfile:
    def test_reports_event_loop_sites(self, recorded, capsys):
        assert tracecli.main(["profile", str(recorded)]) == 0
        stdout = capsys.readouterr().out
        assert "events:" in stdout
        assert "max queue depth:" in stdout
        assert "site" in stdout

    def test_trace_without_profile_fails(self, tmp_path, capsys):
        bare = tmp_path / "bare.jsonl"
        bare.write_text(
            json.dumps({"t": 0.0, "cat": "diffusion.tx", "node": 1}) + "\n"
        )
        assert tracecli.main(["profile", str(bare)]) == 1
        assert "no kernel.profile" in capsys.readouterr().err


class TestDispatch:
    def test_module_entrypoint_routes_trace(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        out = tmp_path / "m.jsonl"
        rc = repro_main([
            "trace", "record", "--out", str(out),
            "--nodes", "2", "--duration", "8", "--seed", "5",
        ])
        assert rc == 0
        assert out.exists()

    def test_isi_scenario_records(self, tmp_path):
        out = tmp_path / "isi.jsonl"
        rc = tracecli.main([
            "record", "--out", str(out), "--scenario", "isi",
            "--sources", "1", "--duration", "20", "--seed", "2",
        ])
        assert rc == 0
        records = load_trace(out)
        assert any(r.category == "diffusion.tx" for r in records)


class TestShards:
    @pytest.fixture(scope="class")
    def shards_out(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("shards") / "shards.jsonl"
        rc = tracecli.main([
            "shards", "--scenario", "flood", "--shards", "2",
            "--columns", "8", "--rows", "4", "--duration", "5",
            "--seed", "11", "--out", str(out), "--smoke",
        ])
        assert rc == 0
        return out

    def test_report_attributes_all_windows(self, shards_out, capsys):
        rc = tracecli.main([
            "shards", "--scenario", "flood", "--shards", "2",
            "--columns", "8", "--rows", "4", "--duration", "5",
            "--seed", "11",
        ])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "window attribution" in stdout
        assert " 100.0%" in stdout
        assert "barrier stall" in stdout
        assert "load imbalance" in stdout
        assert "window span" in stdout

    def test_out_is_valid_tracelog(self, shards_out):
        records = load_trace(shards_out)
        by_cat = {}
        for r in records:
            by_cat.setdefault(r.category, []).append(r)
        assert len(by_cat["shard.stats"]) == 2
        assert len(by_cat["shard.profile"]) == 1
        assert len(by_cat["metrics.snapshot"]) == 1
        stats = by_cat["shard.stats"][0].data
        assert sum(stats["windows_by_term"].values()) == stats["rounds"]
        profile = by_cat["shard.profile"][0].data
        assert profile["windows"] == sum(
            s.data["rounds"] for s in by_cat["shard.stats"]
        )

    def test_summarize_reads_sharded_output(self, shards_out, capsys):
        """`trace summarize` on a sharded run's JSONL — the previously
        untested path: merged shard metrics render as counters."""
        assert tracecli.main(["summarize", str(shards_out)]) == 0
        stdout = capsys.readouterr().out
        assert "shard.stats" in stdout
        assert "metrics:" in stdout
        assert "shard.rounds{shard=0}" in stdout
        assert "shard.rounds{shard=1}" in stdout

    def test_smoke_catches_broken_attribution(self, monkeypatch, capsys):
        """If a window ever goes unattributed, the smoke gate fails."""
        from repro.shard import runner

        real = runner.run_sharded

        def sabotage(plan, transport="inline", timeout=None):
            result = real(plan, transport=transport)
            result["shards"][0]["windows_by_term"] = {}
            return result

        monkeypatch.setattr(
            "repro.shard.run_sharded", sabotage
        )
        rc = tracecli.main([
            "shards", "--scenario", "flood", "--shards", "2",
            "--columns", "8", "--rows", "4", "--duration", "5",
            "--smoke",
        ])
        assert rc == 1
        assert "attributed windows" in capsys.readouterr().err
