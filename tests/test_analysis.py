"""Tests for statistics, metrics taps, and the analytical traffic model."""

import pytest

from repro.analysis import (
    DeliveryRecorder,
    TrafficMeter,
    TrafficModel,
    mean_ci,
)
from repro.sim import TraceBus


class TestMeanCi:
    def test_mean(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 3

    def test_single_sample_zero_halfwidth(self):
        ci = mean_ci([5.0])
        assert ci.halfwidth == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_against_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        import numpy as np

        values = [10.0, 12.0, 9.0, 11.0, 13.0]
        ci = mean_ci(values)
        sem = np.std(values, ddof=1) / np.sqrt(len(values))
        t_crit = scipy_stats.t.ppf(0.975, df=len(values) - 1)
        assert ci.halfwidth == pytest.approx(t_crit * sem, rel=1e-3)

    def test_interval_contains_mean(self):
        ci = mean_ci([1.0, 5.0, 9.0])
        assert ci.contains(ci.mean)
        assert ci.low <= ci.mean <= ci.high

    def test_identical_values_zero_width(self):
        ci = mean_ci([4.0, 4.0, 4.0, 4.0])
        assert ci.halfwidth == 0.0

    def test_large_n_uses_asymptotic(self):
        values = [float(i % 7) for i in range(500)]
        ci = mean_ci(values)
        assert ci.halfwidth > 0

    def test_str_format(self):
        assert "±" in str(mean_ci([1.0, 2.0]))


class TestTrafficMeter:
    def test_accumulates_tx(self):
        bus = TraceBus()
        meter = TrafficMeter(bus)
        bus.emit(1.0, "diffusion.tx", node=3, nbytes=100, msg_type="DATA")
        bus.emit(2.0, "diffusion.tx", node=4, nbytes=50, msg_type="INTEREST")
        assert meter.total_bytes == 150
        assert meter.total_messages == 2
        assert meter.bytes_by_node[3] == 100
        assert meter.bytes_by_type["DATA"] == 100
        assert meter.messages_by_type["INTEREST"] == 1

    def test_ignores_other_categories(self):
        bus = TraceBus()
        meter = TrafficMeter(bus)
        bus.emit(1.0, "diffusion.rx", node=3, nbytes=100)
        assert meter.total_bytes == 0

    def test_reset(self):
        bus = TraceBus()
        meter = TrafficMeter(bus)
        bus.emit(1.0, "diffusion.tx", node=3, nbytes=100, msg_type="DATA")
        meter.reset()
        assert meter.total_bytes == 0
        assert not meter.bytes_by_node


class TestDeliveryRecorder:
    def test_counts_per_node(self):
        bus = TraceBus()
        rec = DeliveryRecorder(bus)
        bus.emit(1.0, "app.deliver", node=1, origin=9)
        bus.emit(2.0, "app.deliver", node=1, origin=8)
        bus.emit(3.0, "app.deliver", node=2, origin=9)
        assert rec.count() == 3
        assert rec.count(node=1) == 2
        assert rec.origins_seen(1) == {8, 9}


class TestTrafficModel:
    """Validation against the paper's Section 6.1 numbers."""

    def test_aggregated_is_flat_at_990(self):
        model = TrafficModel()
        values = [model.bytes_per_event(s, aggregated=True) for s in (1, 2, 3, 4)]
        assert all(v == values[0] for v in values)
        # "a flat 990B/event independent of the number of sources"
        assert values[0] == pytest.approx(990, rel=0.01)

    def test_single_source_anchors_both_curves(self):
        model = TrafficModel()
        assert model.bytes_per_event(1, True) == pytest.approx(
            model.bytes_per_event(1, False)
        )

    def test_unaggregated_grows_toward_paper_value(self):
        model = TrafficModel()
        four = model.bytes_per_event(4, aggregated=False)
        # Paper says 3289; our arithmetic gives 3429 (documented 4% gap).
        assert 3289 * 0.95 <= four <= 3429 * 1.01

    def test_unaggregated_monotone_in_sources(self):
        model = TrafficModel()
        values = [model.bytes_per_event(s, False) for s in (1, 2, 3, 4)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_savings_at_four_sources_substantial(self):
        model = TrafficModel()
        # The model's prediction brackets the paper's measured 42%.
        assert 0.6 <= model.savings(4) <= 0.75
        assert model.savings(1) == pytest.approx(0.0)

    def test_breakdown_sums_to_total(self):
        model = TrafficModel()
        b = model.breakdown(3, aggregated=False)
        assert b.total == pytest.approx(
            b.interest + b.exploratory + b.data + b.reinforcement
        )

    def test_table_rows(self):
        rows = TrafficModel().table()
        assert len(rows) == 4
        assert rows[0]["sources"] == 1
        assert rows[3]["unaggregated"] > rows[3]["aggregated"]

    def test_invalid_sources(self):
        with pytest.raises(ValueError):
            TrafficModel().bytes_per_event(0, True)

    def test_exploratory_ratio_effect(self):
        """The paper attributes the sim-vs-testbed savings gap to the
        1:100 vs 1:10 exploratory:data ratio: with more data messages
        per exploratory flood, flooded overhead (interests plus
        exploratory messages) is a smaller share of total traffic."""

        def overhead_share(model):
            b = model.breakdown(4, aggregated=True)
            return (b.interest + b.exploratory) / b.total

        testbed = TrafficModel(exploratory_ratio=10)
        sim_like = TrafficModel(exploratory_ratio=100)
        assert overhead_share(sim_like) < overhead_share(testbed)
