"""Tests for the in-network processing filters."""

import pytest

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting, MessageType
from repro.filters import (
    CountingAggregationFilter,
    GearFilter,
    LoggingFilter,
    SuppressionFilter,
)
from repro.filters.gear import distance_to_region, region_of
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio import Topology
from repro.sim import Simulator
from repro.testbed import IdealNetwork


def build_net(n, connect_pairs, config=None):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01)
    nodes, apis = {}, {}
    for i in range(n):
        transport = net.add_node(i)
        nodes[i] = DiffusionNode(
            sim, i, transport,
            config=config or DiffusionConfig(reinforcement_jitter=0.05),
        )
        apis[i] = DiffusionRouting(nodes[i])
    for a, b in connect_pairs:
        net.connect(a, b)
    return sim, net, nodes, apis


def surveillance_sub():
    return AttributeVector.builder().eq(Key.TYPE, "det").build()


def surveillance_pub():
    return AttributeVector.builder().actual(Key.TYPE, "det").build()


def event(seq):
    return AttributeVector.builder().actual(Key.SEQUENCE, seq).build()


class TestSuppressionFilter:
    def test_duplicate_events_from_two_sources_suppressed(self):
        # Y topology: sources 3 and 4 both feed relay 1 via 2; sink at 0.
        sim, net, nodes, apis = build_net(
            5, [(0, 1), (1, 2), (2, 3), (2, 4)]
        )
        filters = [SuppressionFilter(nodes[i]) for i in range(5)]
        received = []
        apis[0].subscribe(surveillance_sub(), lambda a, m: received.append(a))
        pubs = {i: apis[i].publish(surveillance_pub()) for i in (3, 4)}
        for seq in range(5):
            for src in (3, 4):
                sim.schedule(1.0 + seq, apis[src].send, pubs[src], event(seq))
        sim.run(until=20.0)
        # Each event delivered exactly once despite two reporters.
        seqs = [a.value_of(Key.SEQUENCE) for a in received]
        assert sorted(seqs) == [0, 1, 2, 3, 4]
        assert sum(f.suppressed for f in filters) > 0

    def test_distinct_sequences_pass(self):
        sim, net, nodes, apis = build_net(2, [(0, 1)])
        filt = SuppressionFilter(nodes[1])
        received = []
        apis[0].subscribe(surveillance_sub(), lambda a, m: received.append(a))
        pub = apis[1].publish(surveillance_pub())
        for seq in range(4):
            sim.schedule(1.0 + seq, apis[1].send, pub, event(seq))
        sim.run(until=10.0)
        assert len(received) == 4
        assert filt.suppressed == 0

    def test_non_data_messages_pass_through(self):
        sim, net, nodes, apis = build_net(3, [(0, 1), (1, 2)])
        SuppressionFilter(nodes[1])
        apis[0].subscribe(surveillance_sub(), lambda a, m: None)
        sim.run(until=2.0)
        # Interest flooded through the filtered relay to node 2.
        assert len(nodes[2].gradients) == 1

    def test_messages_without_sequence_pass(self):
        sim, net, nodes, apis = build_net(2, [(0, 1)])
        filt = SuppressionFilter(nodes[1])
        received = []
        apis[0].subscribe(surveillance_sub(), lambda a, m: received.append(a))
        pub = apis[1].publish(surveillance_pub())
        no_seq = AttributeVector.builder().actual(Key.INSTANCE, "x").build()
        sim.schedule(1.0, apis[1].send, pub, no_seq)
        sim.run(until=5.0)
        assert len(received) == 1
        assert filt.passed == 0  # bypassed, not counted as an event

    def test_window_expiry_allows_seq_reuse(self):
        sim, net, nodes, apis = build_net(2, [(0, 1)])
        filt = SuppressionFilter(nodes[1], window=5.0)
        received = []
        apis[0].subscribe(surveillance_sub(), lambda a, m: received.append(a))
        pub = apis[1].publish(surveillance_pub())
        sim.schedule(1.0, apis[1].send, pub, event(7))
        sim.schedule(10.0, apis[1].send, pub, event(7))
        sim.run(until=20.0)
        assert len(received) == 2

    def test_remove(self):
        sim, net, nodes, apis = build_net(2, [(0, 1)])
        filt = SuppressionFilter(nodes[1])
        filt.remove()
        assert len(nodes[1]._filters) == 1  # only the gradient core


class TestCountingAggregation:
    def test_aggregate_carries_detection_count(self):
        # Sources 2 and 3 one hop from aggregator 1, sink at 0.
        sim, net, nodes, apis = build_net(4, [(0, 1), (1, 2), (1, 3)])
        agg = CountingAggregationFilter(nodes[1], delay=0.5)
        received = []
        apis[0].subscribe(surveillance_sub(), lambda a, m: received.append(a))
        pubs = {i: apis[i].publish(surveillance_pub()) for i in (2, 3)}
        for src in (2, 3):
            sim.schedule(1.0, apis[src].send, pubs[src], event(0))
        sim.run(until=10.0)
        assert len(received) == 1
        count = received[0].value_of(CountingAggregationFilter.DETECTIONS_KEY)
        assert count == 2
        assert agg.aggregates_sent == 1
        # The second source's report was absorbed; flood echoes of the
        # aggregate may be absorbed too (they carry the same event key).
        assert agg.reports_absorbed >= 1

    def test_single_report_counts_one(self):
        sim, net, nodes, apis = build_net(3, [(0, 1), (1, 2)])
        CountingAggregationFilter(nodes[1], delay=0.2)
        received = []
        apis[0].subscribe(surveillance_sub(), lambda a, m: received.append(a))
        pub = apis[2].publish(surveillance_pub())
        sim.schedule(1.0, apis[2].send, pub, event(0))
        sim.run(until=10.0)
        assert len(received) == 1
        assert received[0].value_of(CountingAggregationFilter.DETECTIONS_KEY) == 1

    def test_aggregation_adds_latency(self):
        sim, net, nodes, apis = build_net(3, [(0, 1), (1, 2)])
        CountingAggregationFilter(nodes[1], delay=1.0)
        arrivals = []
        apis[0].subscribe(
            surveillance_sub(), lambda a, m: arrivals.append(sim.now)
        )
        pub = apis[2].publish(surveillance_pub())
        sim.schedule(2.0, apis[2].send, pub, event(0))
        sim.run(until=10.0)
        assert len(arrivals) == 1
        assert arrivals[0] >= 3.0  # send time + aggregation delay

    def test_late_duplicates_after_flush_absorbed(self):
        sim, net, nodes, apis = build_net(4, [(0, 1), (1, 2), (1, 3)])
        agg = CountingAggregationFilter(nodes[1], delay=0.2)
        received = []
        apis[0].subscribe(surveillance_sub(), lambda a, m: received.append(a))
        pubs = {i: apis[i].publish(surveillance_pub()) for i in (2, 3)}
        sim.schedule(1.0, apis[2].send, pubs[2], event(0))
        sim.schedule(2.0, apis[3].send, pubs[3], event(0))  # after flush
        sim.run(until=10.0)
        assert len(received) == 1
        assert agg.reports_absorbed >= 1

    def test_remove_cancels_pending(self):
        sim, net, nodes, apis = build_net(3, [(0, 1), (1, 2)])
        agg = CountingAggregationFilter(nodes[1], delay=5.0)
        received = []
        apis[0].subscribe(surveillance_sub(), lambda a, m: received.append(a))
        pub = apis[2].publish(surveillance_pub())
        sim.schedule(1.0, apis[2].send, pub, event(0))
        sim.schedule(2.0, agg.remove)
        sim.run(until=20.0)
        assert received == []  # held message discarded on removal


class TestLoggingFilter:
    def test_counts_by_type_and_forwards(self):
        sim, net, nodes, apis = build_net(3, [(0, 1), (1, 2)])
        log = LoggingFilter(nodes[1])
        received = []
        apis[0].subscribe(surveillance_sub(), lambda a, m: received.append(a))
        pub = apis[2].publish(surveillance_pub())
        sim.schedule(1.0, apis[2].send, pub, event(0))
        sim.run(until=10.0)
        assert len(received) == 1  # transparent
        assert log.counts[MessageType.INTEREST] >= 1
        assert log.counts[MessageType.EXPLORATORY_DATA] >= 1
        assert log.total_messages == sum(log.counts.values())
        assert all(r.nbytes > 0 for r in log.records)

    def test_max_records_cap(self):
        sim, net, nodes, apis = build_net(2, [(0, 1)])
        log = LoggingFilter(nodes[1], max_records=2)
        apis[0].subscribe(surveillance_sub(), lambda a, m: None)
        pub = apis[1].publish(surveillance_pub())
        for seq in range(5):
            sim.schedule(1.0 + seq, apis[1].send, pub, event(seq))
        sim.run(until=10.0)
        assert len(log.records) == 2
        assert log.total_messages > 2


class TestGearRegionMath:
    def test_region_of_extracts_rectangle(self):
        attrs = (
            AttributeVector.builder()
            .ge(Key.X_COORD, 10.0).le(Key.X_COORD, 20.0)
            .ge(Key.Y_COORD, 0.0).le(Key.Y_COORD, 5.0)
            .build()
        )
        assert region_of(attrs) == (10.0, 20.0, 0.0, 5.0)

    def test_region_of_requires_all_bounds(self):
        attrs = AttributeVector.builder().ge(Key.X_COORD, 10.0).build()
        assert region_of(attrs) is None

    def test_distance_inside_is_zero(self):
        assert distance_to_region(15.0, 2.0, (10, 20, 0, 5)) == 0.0

    def test_distance_outside(self):
        assert distance_to_region(25.0, 2.0, (10, 20, 0, 5)) == pytest.approx(5.0)
        assert distance_to_region(23.0, 9.0, (10, 20, 0, 5)) == pytest.approx(5.0)


class TestGearFilter:
    def _line_with_gear(self, n=6, region_at_end=True):
        """Line 0..n-1 with positions; interest region around node n-1."""
        topo = Topology.line(n, spacing=10.0)
        sim, net, nodes, apis = build_net(
            n, [(i, i + 1) for i in range(n - 1)]
        )
        gears = [GearFilter(nodes[i], topo, slack=2.0) for i in range(n)]
        return topo, sim, net, nodes, apis, gears

    def test_interest_still_reaches_region(self):
        topo, sim, net, nodes, apis, gears = self._line_with_gear()
        region_sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, "det")
            .ge(Key.X_COORD, 45.0).le(Key.X_COORD, 55.0)
            .ge(Key.Y_COORD, -5.0).le(Key.Y_COORD, 5.0)
            .build()
        )
        apis[0].subscribe(region_sub, lambda a, m: None)
        sim.run(until=2.0)
        # Node 5 at x=50 is in the region and must have the gradient.
        assert len(nodes[5].gradients) == 1

    def test_pruning_happens_off_axis(self):
        # Star: center 0 connects to region-ward 1 and away-ward 2.
        topo = Topology()
        topo.add_node(0, 0.0, 0.0)
        topo.add_node(1, 10.0, 0.0)   # toward region
        topo.add_node(2, -10.0, 0.0)  # away from region
        topo.add_node(3, -20.0, 0.0)  # further away
        sim, net, nodes, apis = build_net(4, [(0, 1), (0, 2), (2, 3)])
        gears = [GearFilter(nodes[i], topo, slack=2.0) for i in range(4)]
        region_sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, "det")
            .ge(Key.X_COORD, 25.0).le(Key.X_COORD, 35.0)
            .ge(Key.Y_COORD, -5.0).le(Key.Y_COORD, 5.0)
            .build()
        )
        apis[0].subscribe(region_sub, lambda a, m: None)
        sim.run(until=2.0)
        # Node 2 (moving away) pruned the interest: 3 never saw it.
        assert gears[2].pruned >= 1
        assert len(nodes[3].gradients) == 0

    def test_non_geographic_interest_untouched(self):
        topo, sim, net, nodes, apis, gears = self._line_with_gear()
        apis[0].subscribe(surveillance_sub(), lambda a, m: None)
        sim.run(until=2.0)
        assert all(g.pruned == 0 for g in gears)
        assert len(nodes[5].gradients) == 1

    def test_gear_reduces_flood_traffic(self):
        # Grid: sink at one corner, region at the opposite corner.
        topo = Topology.grid(columns=4, rows=4, spacing=10.0)
        pairs = []
        for i in range(16):
            if i % 4 < 3:
                pairs.append((i, i + 1))
            if i < 12:
                pairs.append((i, i + 4))
        # Region around node 1 at (10, 0): the far side of the grid
        # moves away from it and should be pruned.
        region_sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, "det")
            .ge(Key.X_COORD, 5.0).le(Key.X_COORD, 15.0)
            .ge(Key.Y_COORD, -5.0).le(Key.Y_COORD, 5.0)
            .build()
        )

        def interest_tx(nodes):
            return sum(
                n.stats.messages_by_type[MessageType.INTEREST]
                for n in nodes.values()
            )

        sim, net, nodes, apis = build_net(16, pairs)
        apis[0].subscribe(region_sub, lambda a, m: None)
        sim.run(until=2.0)
        baseline = interest_tx(nodes)

        sim2, net2, nodes2, apis2 = build_net(16, pairs)
        for i in range(16):
            GearFilter(nodes2[i], topo, slack=2.0)
        apis2[0].subscribe(region_sub, lambda a, m: None)
        sim2.run(until=2.0)
        with_gear = interest_tx(nodes2)
        assert with_gear < baseline
