"""Cluster-head election: determinism, isolation, one-hop scope, repair."""

import random

from repro.core import DiffusionConfig
from repro.core.messages import MessageType
from repro.faults import FaultEngine, FaultPlan, NodeCrash
from repro.faults.metrics import ResilienceProbe
from repro.hierarchy import HierarchyParams, install_hierarchy
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio import Topology
from repro.testbed import SensorNetwork

#: fast election cadence so short runs converge and age out quickly.
FAST = {
    "announce_interval": 2.0,
    "announce_jitter": 0.5,
    "refresh_damping": 0.0,
}


def tight_config():
    """Compressed diffusion timers (default 60s cadences never
    reinforce inside a short test run)."""
    return DiffusionConfig(
        interest_interval=8.0,
        interest_jitter=0.3,
        exploratory_interval=8.0,
        gradient_timeout=25.0,
        reinforced_timeout=20.0,
    )


def clustered_net(seed=5, columns=5, rows=5, params=None):
    topo = Topology.grid(columns, rows, spacing=15.0)
    net = SensorNetwork(
        topo, config=tight_config(), seed=seed, loss_mode="hashed"
    )
    runtime = install_hierarchy(
        net, mode="clustered", params=dict(FAST, **(params or {}))
    )
    return net, runtime


class TestDeterminism:
    def test_same_seed_elects_same_heads(self):
        runs = []
        for _ in range(2):
            net, runtime = clustered_net(seed=5)
            net.run(until=12.0)
            runs.append(runtime.head_nodes())
        assert runs[0], "some heads must be elected"
        assert runs[0] == runs[1]

    def test_global_random_state_cannot_perturb_elections(self):
        # All election randomness comes from per-node seed streams;
        # scrambling the global random module must change nothing.
        net, runtime = clustered_net(seed=5)
        net.run(until=12.0)
        baseline = runtime.head_nodes()

        random.seed(0xDEADBEEF)
        for _ in range(97):
            random.random()
        net2, runtime2 = clustered_net(seed=5)
        net2.run(until=12.0)
        assert runtime2.head_nodes() == baseline

    def test_election_salt_moves_the_tiebreak(self):
        _, r0 = clustered_net(seed=5, params={"election_salt": 0})
        _, r1 = clustered_net(seed=5, params={"election_salt": 12345})
        t0 = [s._tiebreak for s in r0.services.values()]
        t1 = [s._tiebreak for s in r1.services.values()]
        assert t0 != t1


class TestAnnouncementScope:
    def test_announcements_are_strictly_one_hop(self):
        # Every CONTROL transmission is an origination, never a
        # forward: total CONTROL tx == announcements sent.
        net, runtime = clustered_net(seed=7)
        net.run(until=12.0)
        sent = sum(
            net.node(nid).stats.messages_by_type[MessageType.CONTROL]
            for nid in net.node_ids()
        )
        announced = sum(
            s.announces_sent for s in runtime.services.values()
        )
        assert announced > 0
        assert sent == announced

    def test_control_messages_never_reach_subscriptions(self):
        net, _ = clustered_net(seed=7)
        got = []
        sub = AttributeVector.builder().eq(Key.TYPE, "t").build()
        net.api(12).subscribe(sub, lambda a, m: got.append(m))
        net.run(until=8.0)
        assert got == []


class TestCrashRepair:
    def test_head_crash_triggers_reelection_and_delivery_recovers(self):
        topo = Topology.grid(5, 5, spacing=15.0)
        net = SensorNetwork(
            topo, config=tight_config(), seed=9, loss_mode="hashed"
        )
        runtime = install_hierarchy(
            net, mode="clustered", params=dict(FAST)
        )
        source, sink = 24, 0
        delivered = []
        sub = AttributeVector.builder().eq(Key.TYPE, "crashcase").build()
        net.api(sink).subscribe(sub, lambda a, m: delivered.append(net.sim.now))
        pub = net.api(source).publish(
            AttributeVector.builder().actual(Key.TYPE, "crashcase").build()
        )
        for i in range(38):
            net.sim.schedule(
                2.0 + 2.0 * i, net.api(source).send, pub,
                AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
            )
        probe = ResilienceProbe(net, sink=sink, sources=[source])

        # Let the election settle, then crash whichever head the middle
        # of the grid currently follows.
        net.run(until=14.0)
        heads = runtime.head_nodes()
        assert heads, "no heads elected before the crash"
        victim = runtime.head_of(12)
        if victim in (source, sink) or victim is None:
            victim = next(
                h for h in heads if h not in (source, sink)
            )
        before = sum(s.reelections for s in runtime.services.values())

        plan = FaultPlan(
            actions=[NodeCrash(node=victim, at=16.0, recover_at=None)]
        )
        FaultEngine(net, plan)
        net.run(until=60.0)

        assert victim not in runtime.head_nodes()
        after = sum(s.reelections for s in runtime.services.values())
        assert after > before, "neighborhood never re-elected"
        # Data originated after the crash still reaches the sink.
        ttr = probe.time_to_repair(16.0)
        assert ttr is not None, "delivery never recovered after head crash"

    def test_rebooted_head_restarts_with_clean_soft_state(self):
        net, runtime = clustered_net(seed=11)
        net.run(until=12.0)
        heads = runtime.head_nodes()
        assert heads
        victim = heads[0]
        service = runtime.services[victim]
        assert service.neighbors
        net.fail_node(victim)
        assert service._announce_event is None  # announcements stopped
        net.resurrect_node(victim)
        assert service.neighbors == {}
        assert service.announced_score is None
        net.run(until=20.0)
        assert service.announces_sent > 0
