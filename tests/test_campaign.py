"""Tests for the campaign subsystem: specs, store, pool, resume, CLI.

Trial functions used by the pool tests live at module level so worker
processes can resolve them by ``tests.test_campaign:<name>`` path.
Cross-process state (crash-once markers, interrupt limits) goes through
the filesystem, never through pickled closures.
"""

import os
from pathlib import Path

import pytest

from repro.analysis import load_trace, summarize_campaign
from repro.campaign import (
    Campaign,
    CampaignProgress,
    ResultStore,
    aggregate,
    canonical_json,
    format_pivot,
    format_table,
    pivot,
    run_campaign,
    trial_key,
)
from repro.campaign.builtin import demo_campaign, demo_trial, get_campaign
from repro.campaign.spec import code_version
from repro.sim import TraceBus
from repro.sim.rng import make_rng


# ---------------------------------------------------------------------------
# trial functions resolvable from worker processes


def recording_trial(params, seed):
    """Deterministic result; leaves a ran-marker per execution."""
    directory = Path(params["dir"])
    marker = directory / f"ran-{params['x']}"
    marker.write_text(str(int(marker.read_text() or 0) + 1 if marker.exists() else 1))
    rng = make_rng(seed, "recording")
    return {"x": params["x"], "value": params["x"] + rng.random()}


def interruptible_trial(params, seed):
    """Like recording_trial, but simulates Ctrl-C once the on-disk
    execution budget (``<dir>/limit``) is exhausted."""
    directory = Path(params["dir"])
    limit_file = directory / "limit"
    limit = int(limit_file.read_text()) if limit_file.exists() else 10**9
    if len(list(directory.glob("ran-*"))) >= limit:
        raise KeyboardInterrupt
    return recording_trial(params, seed)


def crash_once_trial(params, seed):
    """Kills its worker process on first execution, succeeds after."""
    directory = Path(params["dir"])
    marker = directory / f"crashed-{params['x']}"
    if not marker.exists():
        marker.write_text("")
        os._exit(17)
    return {"x": params["x"], "seed": seed}


def fail_once_trial(params, seed):
    directory = Path(params["dir"])
    marker = directory / f"failed-{params['x']}"
    if not marker.exists():
        marker.write_text("")
        raise RuntimeError("first attempt fails")
    return {"x": params["x"]}


def _campaign(trial, tmp_path, name="t", grid=None, fixed=None, **kwargs):
    fixed = dict(fixed or {})
    fixed["dir"] = str(tmp_path)
    return Campaign(
        name=name,
        trial=f"tests.test_campaign:{trial}",
        grid=grid or {"x": [1, 2, 3, 4]},
        fixed=fixed,
        **kwargs,
    )


def _executions(tmp_path):
    return sum(
        int(marker.read_text()) for marker in Path(tmp_path).glob("ran-*")
    )


# ---------------------------------------------------------------------------
# spec expansion and trial keys


class TestSpec:
    def test_expansion_is_deterministic(self):
        a = demo_campaign().expand()
        b = demo_campaign().expand()
        assert [s.key for s in a] == [s.key for s in b]
        assert [s.seed for s in a] == [s.seed for s in b]
        assert [s.index for s in a] == list(range(len(a)))

    def test_replicates_fan_out_distinct_seeds(self):
        campaign = demo_campaign()
        specs = campaign.expand()
        by_point = {}
        for spec in specs:
            by_point.setdefault(spec.params["x"], []).append(spec.seed)
        for seeds in by_point.values():
            assert len(seeds) == campaign.replicates
            assert len(set(seeds)) == len(seeds)

    def test_explicit_seeds_pinned(self, tmp_path):
        campaign = _campaign("recording_trial", tmp_path, seeds=[100, 101])
        specs = campaign.expand()
        assert sorted({s.seed for s in specs}) == [100, 101]

    def test_root_seed_changes_derived_seeds_and_keys(self):
        a = demo_campaign(root_seed=1).expand()
        b = demo_campaign(root_seed=2).expand()
        assert [s.seed for s in a] != [s.seed for s in b]
        assert {s.key for s in a}.isdisjoint({s.key for s in b})

    def test_key_sensitive_to_config_seed_and_code(self):
        version = code_version("repro.campaign.builtin:demo_trial")
        base = trial_key("c", "t", {"x": 1}, 7, version)
        assert trial_key("c", "t", {"x": 2}, 7, version) != base
        assert trial_key("c", "t", {"x": 1}, 8, version) != base
        assert trial_key("c", "t", {"x": 1}, 7, "deadbeef") != base
        # key order in the params dict must not matter
        assert trial_key("c", "t", {"a": 1, "b": 2}, 7, version) == trial_key(
            "c", "t", {"b": 2, "a": 1}, 7, version
        )

    def test_rejects_overlapping_fixed_and_grid(self):
        with pytest.raises(ValueError):
            Campaign(name="x", trial="m:f", grid={"a": [1]}, fixed={"a": 2})

    def test_spec_run_executes_in_process(self):
        spec = demo_campaign().expand()[0]
        result = spec.run()
        assert result == demo_trial(dict(spec.params), spec.seed)


# ---------------------------------------------------------------------------
# result store


class TestStore:
    def test_roundtrip_and_stats(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = demo_campaign().expand()[0]
        assert spec.key not in store
        store.put(spec, {"value": 1.5}, meta={"elapsed": 0.1})
        assert spec.key in store
        payload = store.get(spec.key)
        assert payload["result"] == {"value": 1.5}
        assert payload["params"] == dict(spec.params)
        assert payload["meta"]["elapsed"] == 0.1
        assert store.stats()["entries"] == 1
        assert list(store.keys()) == [spec.key]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = demo_campaign().expand()[0]
        path = store.put(spec, {"v": 1})
        path.write_text("{not json")
        assert store.get(spec.key) is None

    def test_clean_removes_selected_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = demo_campaign().expand()
        for spec in specs:
            store.put(spec, {"v": spec.index})
        assert store.clean([specs[0].key]) == 1
        assert specs[0].key not in store
        assert store.clean() == len(specs) - 1
        assert store.stats()["entries"] == 0

    def test_no_temp_file_litter(self, tmp_path):
        store = ResultStore(tmp_path)
        for spec in demo_campaign().expand():
            store.put(spec, {"v": 1})
        assert not list(Path(tmp_path).rglob("*.tmp"))


# ---------------------------------------------------------------------------
# serial execution, caching, resume


class TestSerialRuns:
    def test_run_and_full_cache_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign = _campaign("recording_trial", tmp_path)
        first = run_campaign(campaign, store=store)
        assert first.ok and first.done == 4 and first.cached == 0
        assert _executions(tmp_path) == 4

        second = run_campaign(campaign, store=store)
        assert second.ok and second.done == 0 and second.cached == 4
        assert _executions(tmp_path) == 4  # nothing re-executed
        assert [o.result for o in second.outcomes] == [
            o.result for o in first.outcomes
        ]

    def test_force_reruns_everything(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign = _campaign("recording_trial", tmp_path)
        run_campaign(campaign, store=store)
        report = run_campaign(campaign, store=store, force=True)
        assert report.done == 4 and report.cached == 0

    def test_interrupt_then_resume_serves_cache(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign = _campaign("interruptible_trial", tmp_path)
        (tmp_path / "limit").write_text("2")

        first = run_campaign(campaign, store=store)
        assert first.interrupted
        assert first.done == 2 and first.pending == 2
        completed = [o.spec.key for o in first.outcomes if o.ok]
        stored_bytes = {key: store.get_bytes(key) for key in completed}

        (tmp_path / "limit").write_text("1000000")
        second = run_campaign(campaign, store=store)
        assert not second.interrupted and second.ok
        assert second.cached == 2 and second.done == 2
        # cached trials were served byte-identically, not rewritten
        for key, raw in stored_bytes.items():
            assert store.get_bytes(key) == raw
        # and only the pending trials executed
        assert _executions(tmp_path) == 4

    def test_max_trials_partial_run(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign = _campaign("recording_trial", tmp_path)
        first = run_campaign(campaign, store=store, max_trials=3)
        assert first.done == 3 and first.pending == 1
        second = run_campaign(campaign, store=store)
        assert second.cached == 3 and second.done == 1

    def test_cache_invalidation_on_config_change(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        base = _campaign("recording_trial", tmp_path, fixed={"variant": 1})
        run_campaign(base, store=store)
        changed = _campaign("recording_trial", tmp_path, fixed={"variant": 2})
        report = run_campaign(changed, store=store)
        assert report.cached == 0 and report.done == 4
        # both generations coexist in the content-addressed store
        assert store.stats()["entries"] == 8

    def test_cache_invalidation_on_code_version_change(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        campaign = _campaign("recording_trial", tmp_path)
        run_campaign(campaign, store=store)
        import repro

        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        report = run_campaign(campaign, store=store)
        assert report.cached == 0 and report.done == 4

    def test_failed_trial_retries_then_succeeds(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign = _campaign("fail_once_trial", tmp_path, grid={"x": [1]})
        report = run_campaign(campaign, store=store, retries=1)
        assert report.ok
        assert report.outcomes[0].attempts == 2

    def test_failed_trial_exhausts_retries(self, tmp_path):
        campaign = _campaign("fail_once_trial", tmp_path, grid={"x": [9]})
        report = run_campaign(campaign, retries=0)
        assert report.failed == 1 and not report.ok
        assert "first attempt fails" in report.outcomes[0].error


# ---------------------------------------------------------------------------
# parallel execution


class TestParallelRuns:
    def test_results_identical_to_serial_any_jobs(self, tmp_path):
        campaign = demo_campaign()
        serial = run_campaign(campaign, jobs=1,
                              store=ResultStore(tmp_path / "a"))
        parallel = run_campaign(campaign, jobs=2,
                                store=ResultStore(tmp_path / "b"))
        assert serial.ok and parallel.ok
        by_key_serial = {
            o.spec.key: canonical_json(o.result) for o in serial.outcomes
        }
        by_key_parallel = {
            o.spec.key: canonical_json(o.result) for o in parallel.outcomes
        }
        assert by_key_serial == by_key_parallel

    def test_worker_crash_is_retried(self, tmp_path):
        campaign = _campaign("crash_once_trial", tmp_path, grid={"x": [1]})
        report = run_campaign(campaign, jobs=2, retries=2)
        assert report.ok
        assert report.outcomes[0].attempts >= 2

    def test_worker_crash_exhausts_retries(self, tmp_path):
        report = run_campaign(
            _campaign("always_crash_trial", tmp_path, grid={"x": [1]}),
            jobs=2,
            retries=1,
        )
        assert report.failed == 1
        assert "crashed" in report.outcomes[0].error

    def test_timeout_is_enforced(self, tmp_path):
        campaign = Campaign(
            name="spin",
            trial="repro.campaign.builtin:demo_trial",
            grid={"spin": [0.0, 2.0]},
        )
        report = run_campaign(campaign, jobs=2, timeout=0.7)
        statuses = {
            o.spec.params["spin"]: o.status for o in report.outcomes
        }
        assert statuses[0.0] == "done"
        assert statuses[2.0] == "timeout"


def always_crash_trial(params, seed):
    os._exit(21)


# ---------------------------------------------------------------------------
# progress, logging, aggregation


class TestProgressAndAggregation:
    def test_trace_records_and_jsonl_log(self, tmp_path):
        log_path = tmp_path / "campaign.jsonl"
        bus = TraceBus()
        seen = []
        bus.subscribe("campaign.trial", seen.append)
        progress = CampaignProgress("demo", trace=bus, log_path=log_path)
        report = run_campaign(
            demo_campaign(quick=True),
            store=ResultStore(tmp_path / "store"),
            progress=progress,
        )
        assert report.ok
        assert len(seen) == len(report.outcomes)
        records = load_trace(log_path)
        summary = summarize_campaign(records)
        assert summary.trials == len(report.outcomes)
        assert summary.done == len(report.outcomes)
        assert summary.failed == 0 and not summary.interrupted
        # wall/CPU accounting made it into the log
        assert summary.wall_time >= 0.0

    def test_eta_and_snapshot(self):
        progress = CampaignProgress("x")
        progress.begin(4, jobs=2)
        assert progress.eta() is None
        snap = progress.snapshot()
        assert snap["total"] == 4 and snap["pending"] == 4

    def test_aggregate_mean_ci(self, tmp_path):
        report = run_campaign(demo_campaign())
        rows = aggregate(report.outcomes, "value", by=("x",))
        assert [row.params["x"] for row in rows] == [1, 2, 3, 4]
        assert all(row.n == 2 for row in rows)
        table = format_table(rows, "value", title="demo")
        assert "demo" in table and "±" in table

    def test_pivot_table(self, tmp_path):
        report = run_campaign(get_campaign("demo", quick=True))
        table = pivot(report.outcomes, "value", row="x", col="x")
        text = format_pivot(table, "x", title="pivot")
        assert "pivot" in text

    def test_report_counts(self, tmp_path):
        campaign = _campaign("recording_trial", tmp_path, grid={"x": [1, 2]})
        report = run_campaign(campaign)
        assert report.done == 2
        assert len(report.results()) == 2
        assert report.wall_time >= 0.0
