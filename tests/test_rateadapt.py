"""Tests for closed-loop rate adaptation (Section 6.4 future work)."""

import pytest

from repro.apps.rateadapt import AdaptiveSink, RateAdaptingSource
from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.sim import Simulator
from repro.testbed import IdealNetwork, SensorNetwork
from repro.radio import Topology

TASK = "samples"


def build_ideal_line(n=3, loss=0.0):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01, loss=loss, seed=5)
    config = DiffusionConfig(
        reinforcement_jitter=0.05,
        interest_interval=15.0,
        gradient_timeout=45.0,
        interest_jitter=0.1,
        exploratory_interval=15.0,
    )
    nodes, apis = {}, {}
    for i in range(n):
        nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(nodes[i])
    for i in range(n - 1):
        net.connect(i, i + 1)
    return sim, net, nodes, apis


class TestRateAdaptingSource:
    def test_source_follows_requested_interval(self):
        sim, net, nodes, apis = build_ideal_line()
        source = RateAdaptingSource(apis[2], TASK, default_interval=6.0)
        received = []
        sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, TASK)
            .actual(Key.INTERVAL, 1000)  # ask for 1 Hz
            .build()
        )
        apis[0].subscribe(sub, lambda a, m: received.append(sim.now))
        sim.run(until=30.0)
        assert source.interval == pytest.approx(1.0)
        assert source.retaskings >= 1
        # ~1 event per second after the interest arrives.
        assert len(received) >= 20

    def test_min_interval_respected(self):
        sim, net, nodes, apis = build_ideal_line()
        source = RateAdaptingSource(
            apis[2], TASK, default_interval=6.0, min_interval=2.0
        )
        sub = (
            AttributeVector.builder()
            .eq(Key.TYPE, TASK)
            .actual(Key.INTERVAL, 100)  # asks for 10 Hz
            .build()
        )
        apis[0].subscribe(sub, lambda a, m: None)
        sim.run(until=10.0)
        assert source.interval == pytest.approx(2.0)

    def test_unrelated_interest_ignored(self):
        sim, net, nodes, apis = build_ideal_line()
        source = RateAdaptingSource(apis[2], TASK, default_interval=6.0)
        other = (
            AttributeVector.builder()
            .eq(Key.TYPE, "other")
            .actual(Key.INTERVAL, 100)
            .build()
        )
        apis[0].subscribe(other, lambda a, m: None)
        sim.run(until=10.0)
        assert source.interval == pytest.approx(6.0)
        assert source.retaskings == 0


class TestAdaptiveSink:
    def test_backs_off_under_loss(self):
        sim, net, nodes, apis = build_ideal_line(loss=0.45)
        RateAdaptingSource(apis[2], TASK, default_interval=2.0)
        sink = AdaptiveSink(
            apis[0], TASK,
            initial_interval_ms=1000,
            epoch=20.0,
            back_off_loss=0.25,
        )
        sim.run(until=300.0)
        assert sink.interval_ms > 1000
        assert len(sink.history) >= 10

    def test_speeds_up_when_clean(self):
        sim, net, nodes, apis = build_ideal_line(loss=0.0)
        RateAdaptingSource(apis[2], TASK, default_interval=2.0)
        sink = AdaptiveSink(
            apis[0], TASK,
            initial_interval_ms=5000,
            min_interval_ms=1000,
            epoch=20.0,
        )
        sim.run(until=300.0)
        assert sink.interval_ms < 5000

    def test_interval_clamped(self):
        sim, net, nodes, apis = build_ideal_line(loss=0.6)
        RateAdaptingSource(apis[2], TASK, default_interval=2.0)
        sink = AdaptiveSink(
            apis[0], TASK,
            initial_interval_ms=2000,
            max_interval_ms=8000,
            epoch=15.0,
        )
        sim.run(until=400.0)
        assert sink.interval_ms <= 8000

    def test_resubscription_retasks_source(self):
        sim, net, nodes, apis = build_ideal_line(loss=0.45)
        source = RateAdaptingSource(apis[2], TASK, default_interval=1.0)
        sink = AdaptiveSink(
            apis[0], TASK, initial_interval_ms=1000, epoch=20.0,
            back_off_loss=0.25,
        )
        sim.run(until=300.0)
        # The source followed the sink's backoff.  Under 45% link loss
        # the very latest re-tasking interest may not have arrived yet,
        # so compare against the recent controller history rather than
        # the instantaneous value.
        assert source.interval > 5.0  # backed way off from 1 s
        recent = {h.interval_ms for h in sink.history[-5:]}
        assert int(source.interval * 1000) in recent | {sink.interval_ms}

    def test_closed_loop_improves_delivery_on_congested_testbed(self):
        """The end-to-end claim: when loss is congestion-driven (four
        sources hammering a short line at 300 ms), backing off the rate
        delivers a larger *fraction* of what is sent."""

        def run(adaptive):
            net = SensorNetwork(Topology.line(4, spacing=15.0), seed=9)
            sources = [
                RateAdaptingSource(net.api(i), TASK, default_interval=0.3,
                                   min_interval=0.3)
                for i in (1, 2, 3)
            ]
            if adaptive:
                sink = AdaptiveSink(
                    net.api(0), TASK,
                    initial_interval_ms=300,
                    min_interval_ms=300,
                    epoch=30.0,
                    back_off_loss=0.3,
                )
            else:
                received = []
                net.api(0).subscribe(
                    AttributeVector.builder()
                    .eq(Key.TYPE, TASK)
                    .actual(Key.INTERVAL, 300)
                    .build(),
                    lambda a, m: received.append(a),
                )
            net.run(until=600.0)
            sent = sum(s.events_sent for s in sources)
            got = sink.events_received if adaptive else len(received)
            return got / max(1, sent), sent

        adaptive_ratio, adaptive_sent = run(True)
        fixed_ratio, fixed_sent = run(False)
        assert adaptive_sent < fixed_sent  # it really backed off
        assert adaptive_ratio > fixed_ratio
