"""Property-based tests (hypothesis) for the naming subsystem."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.naming import (
    Attribute,
    AttributeVector,
    Operator,
    ValueType,
    decode_attributes,
    encode_attributes,
    encoded_size,
    one_way_match,
    one_way_match_segregated,
    two_way_match,
)

KEYS = st.integers(min_value=1, max_value=50)


@st.composite
def attributes(draw):
    key = draw(KEYS)
    vtype = draw(st.sampled_from(list(ValueType)))
    op = draw(st.sampled_from(list(Operator)))
    if vtype is ValueType.INT32:
        value = draw(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    elif vtype in (ValueType.FLOAT32, ValueType.FLOAT64):
        value = draw(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            )
        )
    elif vtype is ValueType.STRING:
        value = draw(st.text(max_size=20))
    else:
        value = draw(st.binary(max_size=20))
    return Attribute(key, vtype, op, value)


attr_lists = st.lists(attributes(), max_size=12)


class TestMatchingProperties:
    @given(attr_lists, attr_lists)
    @settings(max_examples=100, deadline=None)
    def test_segregated_agrees_with_reference(self, a, b):
        assert one_way_match_segregated(a, b) == one_way_match(a, b)

    @given(attr_lists, attr_lists)
    def test_two_way_is_symmetric(self, a, b):
        assert two_way_match(a, b) == two_way_match(b, a)

    @given(attr_lists, attr_lists, attributes())
    def test_adding_actual_to_b_preserves_one_way_match(self, a, b, extra):
        """One-way matching is monotone in B's actuals: more bound data
        can only satisfy more formals, never fewer."""
        if not one_way_match(a, b):
            return
        actual = Attribute(extra.key, extra.type, Operator.IS, extra.value)
        assert one_way_match(a, b + [actual])

    @given(attr_lists, attr_lists)
    def test_removing_formals_from_a_preserves_match(self, a, b):
        if not one_way_match(a, b):
            return
        fewer_formals = [x for x in a if x.is_actual]
        assert one_way_match(fewer_formals, b)

    @given(attr_lists)
    def test_actuals_only_sets_always_two_way_match(self, attrs):
        actuals = [
            Attribute(x.key, x.type, Operator.IS, x.value) for x in attrs
        ]
        assert two_way_match(actuals, actuals)

    @given(attr_lists)
    def test_match_against_self_with_satisfied_formals(self, attrs):
        """A set joined with actuals for each of its formals matches
        itself one-way."""
        closure = list(attrs)
        for x in attrs:
            if x.is_formal and x.op is not Operator.NE:
                if x.op is Operator.EQ_ANY:
                    closure.append(Attribute(x.key, x.type, Operator.IS, x.value))
                elif x.op in (Operator.EQ, Operator.GE, Operator.LE):
                    closure.append(Attribute(x.key, x.type, Operator.IS, x.value))
        only_satisfiable = [
            x
            for x in closure
            if not (x.is_formal and x.op in (Operator.NE, Operator.GT, Operator.LT))
        ]
        assert one_way_match(only_satisfiable, only_satisfiable)

    @given(attr_lists, attr_lists)
    def test_matching_is_deterministic(self, a, b):
        assert one_way_match(a, b) == one_way_match(a, b)


class TestWireProperties:
    @given(attr_lists)
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, attrs):
        data = encode_attributes(attrs)
        decoded, consumed = decode_attributes(data)
        assert consumed == len(data)
        assert decoded == attrs

    @given(attr_lists)
    def test_encoded_size_is_exact(self, attrs):
        assert encoded_size(attrs) == len(encode_attributes(attrs))

    @given(attr_lists, st.binary(max_size=8))
    def test_trailing_bytes_ignored(self, attrs, trailer):
        data = encode_attributes(attrs) + trailer
        decoded, consumed = decode_attributes(data)
        assert decoded == attrs
        assert consumed == len(data) - len(trailer)


class TestVectorProperties:
    @given(attr_lists)
    def test_digest_permutation_invariant(self, attrs):
        import random as _random

        vec = AttributeVector(attrs)
        shuffled = list(attrs)
        _random.Random(0).shuffle(shuffled)
        assert vec.digest() == AttributeVector(shuffled).digest()

    @given(attr_lists, attributes())
    def test_with_attribute_appends(self, attrs, extra):
        vec = AttributeVector(attrs)
        extended = vec.with_attribute(extra)
        assert len(extended) == len(vec) + 1
        assert extended[-1] == extra

    @given(attr_lists, KEYS)
    def test_without_key_removes_all(self, attrs, key):
        vec = AttributeVector(attrs).without_key(key)
        assert all(a.key != key for a in vec)

    @given(attr_lists)
    def test_wire_size_nonnegative_and_additive(self, attrs):
        vec = AttributeVector(attrs)
        assert vec.wire_size() == sum(a.wire_size() for a in attrs)


class TestWireFuzzing:
    """The decoder must fail cleanly on arbitrary bytes: WireFormatError
    (or a successful parse), never any other exception."""

    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_decoder_never_crashes(self, blob):
        from repro.naming.wire import WireFormatError

        try:
            decoded, consumed = decode_attributes(blob)
        except WireFormatError:
            return
        assert consumed <= len(blob)
        for attr in decoded:
            assert attr.wire_size() >= 8
