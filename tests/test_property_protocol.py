"""Property-based tests of protocol invariants on random topologies.

For arbitrary connected graphs and seeds, directed diffusion must:

* flood interests to every node (connected ⇒ full gradient coverage);
* deliver each data message to a subscriber at most once;
* quiesce (no livelock) — the event count stays bounded;
* never transmit a message an unbounded number of times per node.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting, MessageType
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.sim import Simulator
from repro.testbed import IdealNetwork


@st.composite
def connected_graphs(draw):
    """A random connected graph as (n, edge list)."""
    n = draw(st.integers(min_value=2, max_value=8))
    # A random spanning tree guarantees connectivity...
    edges = set()
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges.add((parent, node))
    # ...plus a few random extra edges for cycles.
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return n, sorted(edges)


def build(n, edges, seed=1):
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01, seed=seed)
    config = DiffusionConfig(reinforcement_jitter=0.05)
    nodes, apis = {}, {}
    for i in range(n):
        nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(nodes[i])
    for a, b in edges:
        net.connect(a, b)
    return sim, nodes, apis


SUB = AttributeVector.builder().eq(Key.TYPE, "p").build()
PUB = AttributeVector.builder().actual(Key.TYPE, "p").build()


class TestFloodInvariants:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_interest_reaches_every_node(self, graph):
        n, edges = graph
        sim, nodes, apis = build(n, edges)
        apis[0].subscribe(SUB, lambda a, m: None)
        sim.run(until=5.0)
        for i in range(1, n):
            assert len(nodes[i].gradients) == 1, f"node {i} missed the flood"

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_each_node_forwards_interest_once(self, graph):
        n, edges = graph
        sim, nodes, apis = build(n, edges)
        apis[0].subscribe(SUB, lambda a, m: None)
        sim.run(until=5.0)
        for i in range(n):
            assert nodes[i].stats.messages_by_type[MessageType.INTEREST] <= 1


class TestDeliveryInvariants:
    @given(connected_graphs(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_at_most_once_delivery(self, graph, seed):
        n, edges = graph
        sim, nodes, apis = build(n, edges, seed=seed)
        received = []
        apis[0].subscribe(SUB, lambda a, m: received.append(a.value_of(Key.SEQUENCE)))
        source = n - 1
        pub = apis[source].publish(PUB)
        for i in range(3):
            sim.schedule(1.0 + i, apis[source].send, pub,
                         AttributeVector.builder().actual(Key.SEQUENCE, i).build())
        sim.run(until=20.0)
        assert sorted(received) == sorted(set(received))
        # Lossless connected network: everything arrives.
        assert set(received) == {0, 1, 2}

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_simulation_quiesces(self, graph):
        n, edges = graph
        sim, nodes, apis = build(n, edges)
        apis[0].subscribe(SUB, lambda a, m: None)
        pub = apis[n - 1].publish(PUB)
        sim.schedule(1.0, apis[n - 1].send, pub,
                     AttributeVector.builder().actual(Key.SEQUENCE, 0).build())
        sim.run(until=25.0, max_events=20_000)
        # No livelock: the bound is far below the cap for n <= 8.
        assert sim.events_processed < 20_000

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_exploratory_forwarded_at_most_once_per_node(self, graph):
        n, edges = graph
        sim, nodes, apis = build(n, edges)
        apis[0].subscribe(SUB, lambda a, m: None)
        pub = apis[n - 1].publish(PUB)
        sim.schedule(1.0, apis[n - 1].send, pub,
                     AttributeVector.builder().actual(Key.SEQUENCE, 0).build())
        sim.run(until=10.0)
        for i in range(n):
            assert (
                nodes[i].stats.messages_by_type[MessageType.EXPLORATORY_DATA]
                <= 1
            )
