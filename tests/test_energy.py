"""Tests for the duty-cycle energy model and ledgers (paper Section 6.1)."""

import pytest

from repro.energy import (
    DutyCycleModel,
    EnergyLedger,
    NetworkEnergyAccount,
    PAPER_POWER_RATIOS,
)
from repro.energy.model import PAPER_TIME_RATIOS, paper_duty_cycle_table


class TestDutyCycleModel:
    def test_paper_claim_full_duty_listen_dominates(self):
        model = DutyCycleModel()
        b = model.breakdown(1.0)
        assert b.listen_fraction > 0.8

    def test_paper_claim_half_listen_near_22_percent(self):
        model = DutyCycleModel()
        crossover = model.listen_half_duty_cycle()
        # paper says "at duty cycle of 22% half of the energy is spent
        # listening"; the 1:2:2 power simplification puts it at 20%.
        assert 0.15 <= crossover <= 0.25
        b = model.breakdown(crossover)
        assert b.listen_fraction == pytest.approx(0.5, abs=0.01)

    def test_paper_claim_send_dominates_at_10_percent(self):
        model = DutyCycleModel()
        b = model.breakdown(0.10)
        assert b.send > b.listen

    def test_send_dominance_crossover(self):
        model = DutyCycleModel()
        d = model.send_dominance_duty_cycle()
        assert 0.10 <= d <= 0.20
        below = model.breakdown(d * 0.9)
        assert below.send > below.listen

    def test_energy_monotonic_in_duty_cycle(self):
        model = DutyCycleModel()
        energies = [model.energy(d) for d in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(a < b for a, b in zip(energies, energies[1:]))

    def test_invalid_duty_cycle(self):
        model = DutyCycleModel()
        with pytest.raises(ValueError):
            model.breakdown(1.5)
        with pytest.raises(ValueError):
            model.breakdown(-0.1)

    def test_invalid_ratios(self):
        with pytest.raises(ValueError):
            DutyCycleModel(power_ratios=(-1.0, 2.0, 2.0))

    def test_zero_listen_crossover_raises(self):
        model = DutyCycleModel(power_ratios=(0.0, 2.0, 2.0))
        with pytest.raises(ValueError):
            model.listen_half_duty_cycle()

    def test_table_rows(self):
        rows = paper_duty_cycle_table()
        assert [r["duty_cycle"] for r in rows] == [1.0, 0.22, 0.15, 0.10]
        assert rows[0]["listen_fraction"] > rows[-1]["listen_fraction"]

    def test_breakdown_fractions_sum_to_one(self):
        b = DutyCycleModel().breakdown(0.5)
        assert b.listen_fraction + b.receive_fraction + b.send_fraction == (
            pytest.approx(1.0)
        )


class TestEnergyLedger:
    def test_send_receive_accumulate(self):
        ledger = EnergyLedger()
        ledger.record_send(2.0)
        ledger.record_send(1.0)
        ledger.record_receive(4.0)
        assert ledger.time_sending == 3.0
        assert ledger.time_receiving == 4.0

    def test_listen_time_is_remainder(self):
        ledger = EnergyLedger(duty_cycle=1.0)
        ledger.record_send(10.0)
        ledger.record_receive(10.0)
        assert ledger.listen_time(elapsed=100.0) == pytest.approx(80.0)

    def test_duty_cycle_scales_listen(self):
        ledger = EnergyLedger(duty_cycle=0.1)
        assert ledger.listen_time(elapsed=100.0) == pytest.approx(10.0)

    def test_energy_uses_power_ratios(self):
        ledger = EnergyLedger(duty_cycle=1.0)
        ledger.record_send(10.0)
        ledger.record_receive(5.0)
        b = ledger.breakdown(elapsed=100.0)
        pl, pr, ps = PAPER_POWER_RATIOS
        assert b.send == pytest.approx(ps * 10.0)
        assert b.receive == pytest.approx(pr * 5.0)
        assert b.listen == pytest.approx(pl * 85.0)

    def test_negative_time_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ValueError):
            ledger.record_send(-1.0)
        with pytest.raises(ValueError):
            ledger.record_receive(-1.0)

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger(duty_cycle=1.5)

    def test_listen_time_never_negative(self):
        ledger = EnergyLedger()
        ledger.record_send(200.0)
        assert ledger.listen_time(elapsed=100.0) == 0.0


class TestNetworkAccount:
    def test_aggregates_across_nodes(self):
        account = NetworkEnergyAccount()
        account.ledger(1).record_send(10.0)
        account.ledger(2).record_send(20.0)
        b = account.total_breakdown(elapsed=100.0)
        ps = PAPER_POWER_RATIOS[2]
        assert b.send == pytest.approx(ps * 30.0)
        assert account.node_ids() == [1, 2]

    def test_ledger_memoized(self):
        account = NetworkEnergyAccount()
        assert account.ledger(1) is account.ledger(1)

    def test_total_energy_positive(self):
        account = NetworkEnergyAccount()
        account.ledger(1)
        assert account.total_energy(elapsed=10.0) > 0
