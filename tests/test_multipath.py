"""Tests for multipath reinforcement (paper Section 6.4 future work)."""

import pytest

from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting, MessageType
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.sim import Simulator
from repro.testbed import IdealNetwork


def build_diamond(multipath_degree, loss=0.0, seed=3):
    """0 (sink) - {1, 2} - 3 (source): two disjoint relay paths."""
    sim = Simulator()
    net = IdealNetwork(sim, delay=0.01, loss=loss, seed=seed)
    config = DiffusionConfig(
        multipath_degree=multipath_degree,
        reinforcement_jitter=0.05,
        exploratory_interval=10.0,
        interest_interval=10.0,
        gradient_timeout=30.0,
        interest_jitter=0.1,
    )
    nodes, apis = {}, {}
    for i in range(4):
        nodes[i] = DiffusionNode(sim, i, net.add_node(i), config=config)
        apis[i] = DiffusionRouting(nodes[i])
    for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
        net.connect(a, b)
    return sim, net, nodes, apis


def run_workload(sim, apis, count=30):
    received = []
    sub = AttributeVector.builder().eq(Key.TYPE, "t").build()
    apis[0].subscribe(sub, lambda a, m: received.append(a.value_of(Key.SEQUENCE)))
    pub = apis[3].publish(AttributeVector.builder().actual(Key.TYPE, "t").build())
    for i in range(count):
        sim.schedule(1.0 + i, apis[3].send, pub,
                     AttributeVector.builder().actual(Key.SEQUENCE, i).build())
    return received


class TestConfig:
    def test_degree_validated(self):
        with pytest.raises(ValueError):
            DiffusionConfig(multipath_degree=0).validate()
        DiffusionConfig(multipath_degree=3).validate()


class TestSinglePathBaseline:
    def test_degree_one_uses_one_relay(self):
        sim, net, nodes, apis = build_diamond(multipath_degree=1)
        received = run_workload(sim, apis)
        sim.run(until=40.0)
        assert len(set(received)) == 30
        # Only one relay carries plain data per generation; total relay
        # DATA transmissions equal the data count (no duplication).
        relay_data = (
            nodes[1].stats.messages_by_type[MessageType.DATA]
            + nodes[2].stats.messages_by_type[MessageType.DATA]
        )
        assert relay_data <= 30


class TestMultipath:
    def test_degree_two_reinforces_both_relays(self):
        sim, net, nodes, apis = build_diamond(multipath_degree=2)
        received = run_workload(sim, apis)
        sim.run(until=40.0)
        assert len(set(received)) == 30
        # Both relays carry data: total relay transmissions approach 2x.
        relay_data = (
            nodes[1].stats.messages_by_type[MessageType.DATA]
            + nodes[2].stats.messages_by_type[MessageType.DATA]
        )
        assert relay_data > 35

    def test_sink_delivers_each_event_once_despite_duplicates(self):
        sim, net, nodes, apis = build_diamond(multipath_degree=2)
        received = run_workload(sim, apis)
        sim.run(until=40.0)
        # Duplicate copies are suppressed by the core cache.
        assert sorted(received) == sorted(set(received))

    def test_multipath_improves_delivery_on_lossy_links(self):
        def delivery(degree):
            total = 0
            for seed in (3, 4, 5):
                sim, net, nodes, apis = build_diamond(
                    multipath_degree=degree, loss=0.25, seed=seed
                )
                received = run_workload(sim, apis, count=40)
                sim.run(until=60.0)
                total += len(set(received))
            return total

        single = delivery(1)
        multi = delivery(2)
        assert multi > single

    def test_multipath_costs_more_traffic(self):
        def relay_bytes(degree):
            sim, net, nodes, apis = build_diamond(multipath_degree=degree)
            run_workload(sim, apis)
            sim.run(until=40.0)
            return nodes[1].stats.bytes_sent + nodes[2].stats.bytes_sent

        assert relay_bytes(2) > relay_bytes(1) * 1.3
