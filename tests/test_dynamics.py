"""Tests for mobility, failures, and diffusion's soft-state repair."""

import math

import pytest

from repro import AttributeVector, Key
from repro.core import DiffusionConfig
from repro.radio import DistancePropagation, Topology
from repro.radio.dynamics import (
    FailureEvent,
    FailureSchedule,
    RandomWaypointMobility,
)
from repro.sim import Simulator
from repro.testbed import SensorNetwork


class TestTopologyMobility:
    def test_move_node_updates_distances(self):
        topo = Topology()
        topo.add_node(1, 0.0, 0.0)
        topo.add_node(2, 10.0, 0.0)
        topo.move_node(2, 30.0, 40.0)
        assert topo.effective_distance(1, 2) == pytest.approx(50.0)

    def test_move_preserves_floor_by_default(self):
        topo = Topology()
        topo.add_node(1, 0.0, 0.0, floor=1)
        topo.move_node(1, 5.0, 5.0)
        assert topo.position(1).floor == 1
        topo.move_node(1, 5.0, 5.0, floor=0)
        assert topo.position(1).floor == 0

    def test_propagation_sees_movement(self):
        topo = Topology()
        topo.add_node(1, 0.0, 0.0)
        topo.add_node(2, 10.0, 0.0)
        prop = DistancePropagation(topo, full_range=20.0, max_range=30.0,
                                   asymmetry=0.0)
        assert prop.link_prr(1, 2, 0.0) == 1.0
        topo.move_node(2, 100.0, 0.0)
        assert prop.link_prr(1, 2, 1.0) == 0.0


class TestRandomWaypoint:
    def _mobility(self, **kwargs):
        sim = Simulator()
        topo = Topology()
        topo.add_node(7, 0.0, 0.0)
        mob = RandomWaypointMobility(
            sim, topo, 7, bounds=(0.0, 50.0, 0.0, 50.0), **kwargs
        )
        return sim, topo, mob

    def test_node_stays_in_bounds(self):
        sim, topo, mob = self._mobility(speed=5.0, step=0.5)
        positions = []

        def sample():
            positions.append(topo.position(7))
            sim.schedule(1.0, sample)

        sim.schedule(0.5, sample)
        sim.run(until=120.0)
        assert len(positions) > 100
        for p in positions:
            assert -1e-9 <= p.x <= 50.0
            assert -1e-9 <= p.y <= 50.0

    def test_speed_respected_per_step(self):
        sim, topo, mob = self._mobility(speed=2.0, step=1.0)
        last = topo.position(7)
        max_step = 0.0

        def sample():
            nonlocal last, max_step
            current = topo.position(7)
            max_step = max(max_step, last.planar_distance(current))
            last = current
            sim.schedule(1.0, sample)

        sim.schedule(1.0, sample)
        sim.run(until=60.0)
        assert max_step <= 2.0 + 1e-6

    def test_waypoints_visited_and_distance_tracked(self):
        sim, topo, mob = self._mobility(speed=10.0, step=0.5)
        sim.run(until=120.0)
        assert mob.waypoints_visited >= 3
        assert mob.distance_travelled > 50.0

    def test_stop_halts_movement(self):
        sim, topo, mob = self._mobility(speed=5.0, step=0.5)
        sim.run(until=5.0)
        mob.stop()
        frozen = topo.position(7)
        sim.run(until=20.0)
        assert topo.position(7) == frozen

    def test_invalid_parameters(self):
        sim = Simulator()
        topo = Topology()
        topo.add_node(1, 0.0, 0.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(sim, topo, 1, bounds=(10, 0, 0, 10))
        with pytest.raises(ValueError):
            RandomWaypointMobility(sim, topo, 1, bounds=(0, 10, 0, 10), speed=0)

    def test_default_rng_is_seed_derived_stream(self):
        # The default must come from the shared stream derivation, not
        # bare random.Random(node_id): node-local streams elsewhere
        # (MAC backoff, diffusion jitter) would otherwise replay the
        # same sequence under identical seeds.
        from repro.sim.rng import make_rng

        sim, topo, mob = self._mobility(speed=5.0)
        expected = make_rng(7, "mobility")
        assert mob.rng.random() == expected.random()
        import random as stdlib_random

        bare = stdlib_random.Random(7)
        sim2 = Simulator()
        topo2 = Topology()
        topo2.add_node(7, 0.0, 0.0)
        mob2 = RandomWaypointMobility(
            sim2, topo2, 7, bounds=(0.0, 50.0, 0.0, 50.0), speed=5.0
        )
        assert mob2.rng.random() != bare.random()


class TestFailureSchedule:
    def _network(self):
        # Diamond: 0 - {1, 2} - 3, alternate relays.
        topo = Topology()
        topo.add_node(0, 0.0, 0.0)
        topo.add_node(1, 14.0, 10.0)
        topo.add_node(2, 14.0, -10.0)
        topo.add_node(3, 28.0, 0.0)
        config = DiffusionConfig(
            interest_interval=10.0,
            gradient_timeout=30.0,
            interest_jitter=0.2,
            exploratory_interval=10.0,
            reinforced_timeout=25.0,
        )
        return SensorNetwork(topo, seed=9, config=config)

    def test_failure_and_repair_around_dead_relay(self):
        net = self._network()
        received = []
        sub = AttributeVector.builder().eq(Key.TYPE, "t").build()
        net.api(0).subscribe(sub, lambda a, m: received.append(net.sim.now))
        pub = net.api(3).publish(
            AttributeVector.builder().actual(Key.TYPE, "t").build()
        )
        for i in range(60):
            net.sim.schedule(
                2.0 + i, net.api(3).send, pub,
                AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
            )
        FailureSchedule(net, [FailureEvent(node_id=1, fail_at=20.0)])
        net.run(until=80.0)
        # Deliveries continue well after the failure: exploratory
        # messages re-discover the surviving relay.
        late = [t for t in received if t > 45.0]
        assert len(late) >= 10

    def test_recovery_restores_listening(self):
        net = self._network()
        schedule = FailureSchedule(
            net,
            [FailureEvent(node_id=1, fail_at=5.0, recover_at=15.0)],
        )
        net.run(until=30.0)
        assert schedule.failures_applied == 1
        assert schedule.recoveries_applied == 1
        assert net.stack(1).modem.receive_callback is not None

    def test_recovery_before_failure_rejected(self):
        net = self._network()
        with pytest.raises(ValueError):
            FailureSchedule(
                net, [FailureEvent(node_id=1, fail_at=10.0, recover_at=5.0)]
            )

    def _run_with_planted_gradient(self, clear_state):
        """Crash relay 1 with a sentinel gradient planted just before;
        returns the relay's gradient table after recovery + traffic."""
        net = self._network()
        received = []
        sub = AttributeVector.builder().eq(Key.TYPE, "t").build()
        net.api(0).subscribe(sub, lambda a, m: received.append(net.sim.now))
        pub = net.api(3).publish(
            AttributeVector.builder().actual(Key.TYPE, "t").build()
        )
        for i in range(70):
            net.sim.schedule(
                2.0 + i, net.api(3).send, pub,
                AttributeVector.builder().actual(Key.SEQUENCE, i).build(),
            )
        FailureSchedule(
            net,
            [FailureEvent(node_id=1, fail_at=20.0, recover_at=40.0)],
            clear_state=clear_state,
        )
        sentinel = AttributeVector.builder().eq(Key.TYPE, "sentinel").build()

        def plant():
            # A gradient toward a neighbor that does not exist: only a
            # state wipe can ever remove it.
            entry = net.node(1).gradients.entry_for(sentinel)
            entry.update_gradient(99, net.sim.now, timeout=10_000.0)

        net.sim.schedule_at(15.0, plant)
        net.run(until=80.0)
        table = net.node(1).gradients
        neighbors = {
            neighbor
            for entry in table.entries()
            for neighbor in entry.gradients
        }
        return table, neighbors, received

    def test_reboot_wipes_soft_state_and_rebuilds_from_traffic(self):
        table, neighbors, received = self._run_with_planted_gradient(
            clear_state=True
        )
        # The sentinel is gone: post-reboot gradients were rebuilt by
        # exploratory/interest traffic, not inherited.
        assert 99 not in neighbors
        # And rebuilt they were — the relay re-learned real neighbors
        # and deliveries continued after the reboot.
        assert neighbors, "relay never re-learned any gradients"
        assert any(t > 45.0 for t in received)

    def test_legacy_recovery_keeps_soft_state(self):
        table, neighbors, received = self._run_with_planted_gradient(
            clear_state=False
        )
        assert 99 in neighbors  # pre-crash state inherited
