"""Tests for the radio-topology monitoring application."""

import pytest

from repro.apps.topomon import (
    NeighborReporter,
    TopologyMonitor,
    decode_neighbor_list,
    encode_neighbor_list,
)
from repro.core import DiffusionConfig
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio import Topology
from repro.testbed import SensorNetwork, isi_testbed_network


def deploy_monitoring(net, monitor_node, interval=20.0):
    monitor = TopologyMonitor(net.api(monitor_node))
    # The monitor node reports too — its own links belong in the graph.
    reporters = [
        NeighborReporter(net.api(node_id), interval=interval)
        for node_id in net.node_ids()
    ]
    return monitor, reporters


class TestCodec:
    def test_round_trip(self):
        assert decode_neighbor_list(encode_neighbor_list([3, 1, 2])) == [1, 2, 3]

    def test_empty(self):
        assert decode_neighbor_list(encode_neighbor_list([])) == []

    def test_malformed(self):
        with pytest.raises(ValueError):
            decode_neighbor_list(b"\x01")


class TestLineTopologyDiscovery:
    def test_monitor_reconstructs_line(self):
        net = SensorNetwork(Topology.line(4, spacing=15.0), seed=6)
        monitor, reporters = deploy_monitoring(net, monitor_node=0)
        net.run(until=90.0)
        snapshot = monitor.snapshot()
        assert monitor.reports_received >= 3
        # The line's adjacencies appear (in at least one direction).
        for a, b in ((0, 1), (1, 2), (2, 3)):
            assert snapshot.graph.has_edge(a, b) or snapshot.graph.has_edge(b, a)
        # Non-adjacent nodes never hear each other.
        assert not snapshot.graph.has_edge(0, 3)
        assert not snapshot.graph.has_edge(3, 0)

    def test_connectivity_and_diameter(self):
        net = SensorNetwork(Topology.line(4, spacing=15.0), seed=6)
        monitor, reporters = deploy_monitoring(net, monitor_node=0)
        net.run(until=90.0)
        snapshot = monitor.snapshot()
        assert snapshot.is_connected()
        assert snapshot.hops_across() == 3
        assert snapshot.hop_count(0, 3) == 3

    def test_reporters_learn_neighbors_from_traffic(self):
        net = SensorNetwork(Topology.line(3, spacing=15.0), seed=6)
        monitor, reporters = deploy_monitoring(net, monitor_node=0)
        net.run(until=60.0)
        # The middle node heard both ends.
        middle = next(r for r in reporters if r.api.node_id == 1)
        assert set(middle.recent_neighbors()) >= {0, 2}


class TestIsiTopologyDiscovery:
    def test_testbed_five_hops_across(self):
        """Validates the paper's 'typically 5 hops across' on the
        reconstructed (not configured) topology."""
        net = isi_testbed_network(seed=6)
        monitor, reporters = deploy_monitoring(net, monitor_node=28)
        net.run(until=150.0)
        snapshot = monitor.snapshot()
        assert snapshot.is_connected()
        hops = snapshot.hops_across()
        assert hops is not None
        assert 4 <= hops <= 6

    def test_partition_detection(self):
        net = SensorNetwork(Topology.line(4, spacing=15.0), seed=6)
        monitor, reporters = deploy_monitoring(net, monitor_node=0, interval=10.0)
        net.run(until=35.0)
        # Kill the middle relay, wait for the reporting window to roll
        # over, then look again: the graph splits.
        net.fail_node(1)
        net.run(until=150.0)
        snapshot = monitor.snapshot()
        # Reports from 2..3 can no longer arrive; the last ones the
        # monitor holds still include stale data, so check via hop count
        # from the monitor's side of the cut.
        assert monitor.reports_received > 0


class TestSnapshotAnalysis:
    def test_asymmetric_links_reported(self):
        # Build a snapshot by hand through the monitor's ingestion path.
        net = SensorNetwork(Topology.line(2, spacing=15.0), seed=6)
        monitor = TopologyMonitor(net.api(0))
        monitor._neighbor_sets = {1: [2], 2: []}
        snapshot = monitor.snapshot()
        assert snapshot.asymmetric_links() == [(2, 1)]

    def test_partitions(self):
        net = SensorNetwork(Topology.line(2, spacing=15.0), seed=6)
        monitor = TopologyMonitor(net.api(0))
        monitor._neighbor_sets = {1: [2], 2: [1], 5: [6], 6: [5]}
        snapshot = monitor.snapshot()
        assert not snapshot.is_connected()
        assert len(snapshot.partitions()) == 2

    def test_hops_across_none_when_partitioned(self):
        net = SensorNetwork(Topology.line(2, spacing=15.0), seed=6)
        monitor = TopologyMonitor(net.api(0))
        monitor._neighbor_sets = {1: [2], 2: [1], 5: [6], 6: [5]}
        assert monitor.snapshot().hops_across() is None
