"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import EXAMPLES, main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "subpackages" in out

    def test_experiments_quick_single(self, capsys):
        assert main(["experiments", "--quick", "--only", "micro"]) == 0
        out = capsys.readouterr().out
        assert "footprint" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_example_names_match_disk(self):
        from pathlib import Path

        examples_dir = Path(__file__).resolve().parents[1] / "examples"
        on_disk = {p.name for p in examples_dir.glob("*.py")}
        assert set(EXAMPLES.values()) == on_disk

    def test_example_runs(self, capsys):
        assert main(["example", "quickstart"]) == 0
        out = capsys.readouterr().out
        assert "after interest propagation" in out


class TestCampaignCli:
    def test_list(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "scale-aggregation" in out
        assert "demo" in out

    def test_run_then_cached_rerun(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(
            ["campaign", "run", "demo", "--quick", "--store", store]
        ) == 0
        first = capsys.readouterr().out
        assert "done=4" in first
        assert "value by x" in first

        assert main(
            ["campaign", "run", "demo", "--quick", "--store", store]
        ) == 0
        second = capsys.readouterr().out
        assert "cached=4" in second
        # identical aggregate table on a 100% cache hit
        assert first.splitlines()[-2:] == second.splitlines()[-2:]

    def test_status_and_clean(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        main(["campaign", "run", "demo", "--quick", "--store", store])
        capsys.readouterr()
        assert main(
            ["campaign", "status", "demo", "--quick", "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert "4 cached, 0 pending" in out
        assert main(
            ["campaign", "clean", "demo", "--quick", "--store", store]
        ) == 0
        assert "removed 4 entries" in capsys.readouterr().out

    def test_run_writes_jsonl_log(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        log = tmp_path / "log.jsonl"
        assert main(
            ["campaign", "run", "demo", "--quick", "--store", store,
             "--log", str(log)]
        ) == 0
        from repro.analysis import load_trace, summarize_campaign

        summary = summarize_campaign(load_trace(log))
        assert summary.trials == 4 and summary.done == 4

    def test_unknown_subcommand_prints_help(self, capsys):
        assert main(["campaign"]) == 2
        assert "usage" in capsys.readouterr().out.lower()
