"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import EXAMPLES, main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "subpackages" in out

    def test_experiments_quick_single(self, capsys):
        assert main(["experiments", "--quick", "--only", "micro"]) == 0
        out = capsys.readouterr().out
        assert "footprint" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_example_names_match_disk(self):
        from pathlib import Path

        examples_dir = Path(__file__).resolve().parents[1] / "examples"
        on_disk = {p.name for p in examples_dir.glob("*.py")}
        assert set(EXAMPLES.values()) == on_disk

    def test_example_runs(self, capsys):
        assert main(["example", "quickstart"]) == 0
        out = capsys.readouterr().out
        assert "after interest propagation" in out
