#!/usr/bin/env python3
"""The tiered architecture: motes on micro-diffusion behind a gateway.

Paper Section 4.3: dense, cheap photo sensors run micro-diffusion (one
16-bit tag, 5 gradients, a 10-packet cache, ~tens of bytes of RAM)
while PC/104-class nodes run full diffusion; a dual-stack gateway
bridges the tiers.  Here a user on the full tier subscribes to photo
data and samples arrive from a chain of motes, with the footprint
arithmetic printed alongside.

Run:  python examples/tiered_motes.py
"""

from repro import AttributeVector, Key
from repro.core import DiffusionConfig, DiffusionNode, DiffusionRouting
from repro.micro import (
    MICRO_DATA_BYTES,
    MicroConfig,
    MicroDiffusionNode,
    MicroGateway,
    TagRegistry,
)
from repro.micro.footprint import footprint_report, state_bytes
from repro.sim import Simulator
from repro.testbed import IdealNetwork

PHOTO_TAG = 0x0011


def main() -> None:
    sim = Simulator()
    # Full tier: user (100) - relay (101) - gateway (102).
    full_net = IdealNetwork(sim, delay=0.02)
    full_nodes = {}
    for node_id in (100, 101, 102):
        transport = full_net.add_node(node_id)
        full_nodes[node_id] = DiffusionRouting(
            DiffusionNode(sim, node_id, transport, config=DiffusionConfig())
        )
    full_net.connect(100, 101)
    full_net.connect(101, 102)

    # Mote tier: gateway (102) - motes 1..4 in a chain.
    mote_net = IdealNetwork(sim, delay=0.01)
    motes = {}
    gateway_micro = MicroDiffusionNode(sim, 102, mote_net.add_node(102))
    for mote_id in (1, 2, 3, 4):
        motes[mote_id] = MicroDiffusionNode(
            sim, mote_id, mote_net.add_node(mote_id)
        )
    mote_net.connect(102, 1)
    mote_net.connect(1, 2)
    mote_net.connect(2, 3)
    mote_net.connect(3, 4)

    # Pre-deployed tag registry: tag 0x0011 == photo readings.
    registry = TagRegistry()
    registry.register(
        PHOTO_TAG,
        interest_attrs=AttributeVector.builder().eq(Key.TYPE, "photo").build(),
        data_attrs=AttributeVector.builder().actual(Key.TYPE, "photo").build(),
    )
    gateway = MicroGateway(full_nodes[102], gateway_micro, registry)

    # The user subscribes on the full tier only.
    samples = []
    full_nodes[100].subscribe(
        AttributeVector.builder().eq(Key.TYPE, "photo").build(),
        lambda attrs, msg: samples.append(
            (sim.now, attrs.value_of(Key.INSTANCE), attrs.value_of(Key.SEQUENCE))
        ),
    )

    # Motes sample their photo sensors.
    for i, mote_id in enumerate((4, 3, 4, 2)):
        sim.schedule(2.0 + i, motes[mote_id].send, PHOTO_TAG, bytes([40 + i]))
    sim.run(until=10.0)

    print("photo samples delivered on the full-diffusion tier:")
    for when, instance, seq in samples:
        print(f"   t={when:5.2f}s  from {instance} (seq {seq})")
    print(f"\ninterests bridged down: {gateway.interests_bridged}")
    print(f"data messages bridged up: {gateway.data_bridged}")

    report = footprint_report(MicroConfig())
    print("\nmicro-diffusion footprint (modeled mote build):")
    print(f"   engine state: {report['modeled_data_bytes']} bytes "
          f"(paper budget: {MICRO_DATA_BYTES} bytes of data)")
    print(f"   vs full diffusion daemon data: "
          f"{report['full_diffusion_data_bytes']} bytes "
          f"({report['data_reduction_vs_full']:.0f}x smaller)")
    big = MicroConfig(max_gradients=20, cache_packets=64)
    print(f"   (a 20-gradient/64-packet build would need "
          f"{state_bytes(big)} bytes — over budget)")


if __name__ == "__main__":
    main()
