#!/usr/bin/env python3
"""Reliable transfer of a large persistent object (paper Section 3.1).

The paper leaves loss recovery to applications but was "developing
[a] retransmission scheme for applications that transfer large,
persistent data objects".  This example moves a 4 KB object (say, a
camera image) across the simulated radio testbed: the object streams as
named blocks, the receiver NACKs the holes, and repairs flood until the
object is complete and checksummed.

Run:  python examples/bulk_transfer.py
"""

import hashlib

from repro.testbed import isi_testbed_network
from repro.transfer import BlockReceiver, BlockSender, split_object

SENDER_NODE = 25    # the imaging sensor
RECEIVER_NODE = 39  # the user


def main() -> None:
    net = isi_testbed_network(seed=13)
    payload = bytes((i * 31 + 7) % 256 for i in range(4096))
    obj = split_object("camera-image-1", payload)

    completions = []
    receiver = BlockReceiver(
        net.api(RECEIVER_NODE),
        object_id=obj.object_id,
        on_complete=lambda data, stats: completions.append((data, stats)),
        quiet_timeout=6.0,
        max_repair_rounds=30,
    )
    sender = BlockSender(net.api(SENDER_NODE), block_interval=0.8)
    net.sim.schedule(2.0, sender.offer, obj, 0.0)
    net.run(until=900.0)

    print(f"object: {obj.size} bytes in {obj.block_count} blocks, "
          f"{SENDER_NODE} -> {RECEIVER_NODE} across the testbed\n")
    if completions:
        data, stats = completions[0]
        ok = hashlib.sha1(data).hexdigest() == obj.checksum()
        print(f"completed at t={stats.completed_at:7.1f}s, checksum ok: {ok}")
        print(f"   blocks received : {stats.blocks_received}")
        print(f"   duplicates      : {stats.duplicate_blocks}")
        print(f"   repair rounds   : {stats.repair_rounds}")
        print(f"   sender repairs  : {sender.repairs_served}")
    else:
        print("transfer incomplete:")
        print(f"   received {receiver.stats.blocks_received} blocks, "
              f"missing {len(receiver.missing_blocks())}")
        print(f"   repair rounds used: {receiver.stats.repair_rounds}")


if __name__ == "__main__":
    main()
