#!/usr/bin/env python3
"""In-network monitoring: residual-energy scans (paper Section 7).

Every testbed node reports its remaining energy; aggregator filters at
well-connected relays merge reports in-network so the monitoring
station receives a compact network-wide summary rather than one message
per node — "Tools are needed to ... observe collision rates and energy
consumption" made concrete over the diffusion API itself.

Run:  python examples/energy_monitoring.py
"""

from repro.apps.monitoring import (
    EnergyReporter,
    EnergyScanAggregator,
    EnergyScanSink,
)
from repro.testbed import isi_testbed_network

MONITOR_NODE = 28            # the wired-side node watches the network
AGGREGATOR_NODES = (21, 33, 24)  # well-connected relays merge reports
ENERGY_BUDGETS = {
    # Heterogeneous batteries: the lights have been running longest.
    16: 400.0, 25: 450.0, 22: 500.0, 13: 420.0,
}
DEFAULT_BUDGET = 1000.0


def main() -> None:
    net = isi_testbed_network(seed=77)
    sink = EnergyScanSink(net.api(MONITOR_NODE))
    aggregators = [
        EnergyScanAggregator(net.node(node_id), delay=1.5)
        for node_id in AGGREGATOR_NODES
    ]
    reporters = []
    for node_id in net.node_ids():
        if node_id == MONITOR_NODE:
            continue
        reporters.append(
            EnergyReporter(
                net.api(node_id),
                net.stack(node_id).energy,
                budget=ENERGY_BUDGETS.get(node_id, DEFAULT_BUDGET),
                interval=30.0,
            )
        )
    net.run(until=300.0)

    print(f"monitoring station at node {MONITOR_NODE}, 5-minute scan\n")
    print(f"digests received : {sink.digests_received}")
    merged = sum(a.reports_merged for a in aggregators)
    forwarded = sum(a.digests_forwarded for a in aggregators)
    print(f"reports merged in-network: {merged} "
          f"(into {forwarded} forwarded digests)")
    view = sink.network_view
    if view is not None:
        print("\nnetwork energy picture (paper-relative units):")
        print(f"   poorest node : {view.minimum:8.1f} remaining")
        print(f"   richest node : {view.maximum:8.1f} remaining")
        print(f"   mean         : {view.mean:8.1f}")
        print(f"   reports count: {view.count}")
        print(
            "\nThe minimum pinpoints where the network will partition "
            "first — the quantity residual-energy scans exist to track."
        )


if __name__ == "__main__":
    main()
