#!/usr/bin/env python3
"""Collaborative signal processing: tracking a moving target.

Paper Section 5.3 describes BAE/PSU sensor fusion over diffusion and
calls evaluating "how sensor fusion would be done as a filter"
interesting future work.  Here a 4x4 field of acoustic proximity
sensors watches a target cross the field; fusion filters at two relay
nodes combine concurrent detections (confidence 1 - prod(1 - c_i),
confidence-weighted centroid) and the user receives a track.

Run:  python examples/target_tracking.py
"""

from repro.apps.fusion import (
    FusionFilter,
    MovingTarget,
    ProximitySensor,
    TrackingSink,
)
from repro.core import DiffusionConfig
from repro.radio import Topology
from repro.testbed import SensorNetwork


def main() -> None:
    # 4x4 sensor grid, 15 m spacing; the user sits off to one side.
    topology = Topology.grid(columns=4, rows=4, spacing=15.0)
    topology.add_node(100, 62.0, 22.0)  # the user
    net = SensorNetwork(topology, seed=23, config=DiffusionConfig())

    # The target enters from the left and exits past sensing range on
    # the right, so detections stop when it leaves the field.
    target = MovingTarget(start=(-20.0, 22.0), end=(90.0, 22.0),
                          speed=1.5, depart_at=5.0)
    # Fusion filters at two central relays.
    fusers = [FusionFilter(net.node(n), delay=0.8) for n in (5, 6)]
    # Low-confidence single-sensor guesses (target outside the field)
    # are excluded from the track.
    sink = TrackingSink(net.api(100), target, sample_interval=2.0,
                        min_confidence=0.3)
    sensors = [
        ProximitySensor(net.api(node_id), target, topology,
                        sense_range=25.0, sample_interval=2.0)
        for node_id in topology.node_ids()
        if node_id != 100
    ]
    net.run(until=target.arrival_time + 5.0)

    print("target track as seen by the user:")
    print(f"{'time':>7} {'epoch':>6} {'estimate':>18} {'truth':>18} {'conf':>6}")
    for point in sink.track:
        truth = target.position_at((point.epoch + 0.5) * 2.0)
        print(
            f"{point.time:7.1f} {point.epoch:6d} "
            f"({point.x:6.1f}, {point.y:5.1f})  "
            f"({truth[0]:6.1f}, {truth[1]:5.1f})  {point.confidence:5.2f}"
        )
    error = sink.mean_error()
    reports = sum(s.detections for s in sensors)
    merged = sum(f.reports_fused for f in fusers)
    print(f"\nmean tracking error : {error:.1f} m "
          f"(sensor spacing is 15 m)")
    print(f"raw sensor reports  : {reports}")
    print(f"merged in-network   : {merged} "
          f"(into {sum(f.fusions for f in fusers)} fused estimates)")


if __name__ == "__main__":
    main()
