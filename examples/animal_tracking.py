#!/usr/bin/env python3
"""The paper's Section 3.2 worked example: tracking four-legged animals.

A user asks a 5x5 sensor grid to report four-legged animals inside a
rectangle.  The example shows:

* the exact attribute tuples from the paper (type, interval, duration,
  x/y region; data replies with instance, location, intensity,
  confidence, timestamp);
* geographic scoping — only sensors inside the rectangle answer;
* GEAR-style in-network pruning of the interest flood (the paper's
  cited follow-on optimization), with the traffic saved printed.

Run:  python examples/animal_tracking.py
"""

from repro import AttributeVector, Key, MessageType
from repro.filters import GearFilter
from repro.radio import Topology
from repro.testbed import SensorNetwork


def animal_interest() -> AttributeVector:
    """The paper's interest: (type EQ four-legged-animal-search,
    interval IS 20ms, duration IS 10 seconds, x GE -100, x LE 200, ...)
    scaled to our grid coordinates."""
    return (
        AttributeVector.builder()
        .eq(Key.TYPE, "four-legged-animal-search")
        .actual(Key.INTERVAL, 20)
        .actual(Key.DURATION, 10)
        .ge(Key.X_COORD, -1.0)
        .le(Key.X_COORD, 20.0)
        .ge(Key.Y_COORD, -1.0)
        .le(Key.Y_COORD, 20.0)
        .build()
    )


def detection(x: float, y: float, seq: int) -> AttributeVector:
    """The paper's reply: (type IS ..., instance IS elephant, x IS 125,
    y IS 220, intensity IS 0.6, confidence IS 0.85, timestamp IS ...)."""
    return (
        AttributeVector.builder()
        .actual(Key.INSTANCE, "elephant")
        .actual(Key.X_COORD, x)
        .actual(Key.Y_COORD, y)
        .actual(Key.INTENSITY, 0.6)
        .actual(Key.CONFIDENCE, 0.85)
        .actual(Key.SEQUENCE, seq)
        .build()
    )


def run(with_gear: bool) -> dict:
    topology = Topology.grid(columns=5, rows=5, spacing=18.0)
    net = SensorNetwork(topology, seed=11)
    if with_gear:
        for node_id in net.node_ids():
            GearFilter(net.node(node_id), topology)

    # Every sensor publishes detections with its own location as actuals.
    # A sensor outside the queried rectangle never matches the interest,
    # so its data never leaves the node — geographic scoping for free.
    publications = {}
    for node_id in net.node_ids():
        pos = topology.position(node_id)
        publications[node_id] = net.api(node_id).publish(
            AttributeVector.builder()
            .actual(Key.TYPE, "four-legged-animal-search")
            .actual(Key.X_COORD, pos.x)
            .actual(Key.Y_COORD, pos.y)
            .build()
        )

    received = []
    # The user sits at the grid center (node 12); the queried region is
    # the bottom-left corner, so the flood toward the far corner is
    # wasted work GEAR can prune.
    net.api(12).subscribe(
        animal_interest(), lambda attrs, msg: received.append(attrs)
    )
    net.run(until=3.0)

    # Simulated detections at every sensor (real deployments would gate
    # this on signal processing; scoping handles relevance).
    for seq in range(5):
        for node_id in net.node_ids():
            pos = topology.position(node_id)
            net.sim.schedule(
                3.0 + seq * 2.0 + node_id * 0.01,
                net.api(node_id).send,
                publications[node_id],
                detection(pos.x, pos.y, seq),
            )
    net.run(until=20.0)

    interest_tx = sum(
        net.node(n).stats.messages_by_type[MessageType.INTEREST]
        for n in net.node_ids()
    )
    return {
        "received": len(received),
        "reporting_positions": {
            (a.value_of(Key.X_COORD), a.value_of(Key.Y_COORD)) for a in received
        },
        "interest_transmissions": interest_tx,
    }


def main() -> None:
    plain = run(with_gear=False)
    geared = run(with_gear=True)

    print("detections delivered to the user:", plain["received"])
    print("positions that reported (all inside the 0..20 square):")
    for x, y in sorted(plain["reporting_positions"]):
        print(f"   ({x:.0f}, {y:.0f})")
    inside = all(
        0.0 <= x <= 20.0 and 0.0 <= y <= 20.0
        for x, y in plain["reporting_positions"]
    )
    print("geographic scoping respected:", inside)
    print()
    print("interest flood cost (transmissions):")
    print(f"   plain flooding : {plain['interest_transmissions']}")
    print(f"   with GEAR      : {geared['interest_transmissions']}")


if __name__ == "__main__":
    main()
