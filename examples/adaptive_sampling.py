#!/usr/bin/env python3
"""Closed-loop rate adaptation (paper Section 6.4 future work).

"The diffusion applications we currently use operate in an open loop;
feedback and congestion control are needed."  This example closes the
loop: three sources hammer a congested line at 300 ms; an adaptive sink
watches its loss and re-tasks them (via the INTERVAL attribute in its
interests) until the network keeps up.  The same run without adaptation
is shown for contrast.

Run:  python examples/adaptive_sampling.py
"""

from repro.apps.rateadapt import AdaptiveSink, RateAdaptingSource
from repro.naming import AttributeVector
from repro.naming.keys import Key
from repro.radio import Topology
from repro.testbed import SensorNetwork

TASK = "samples"
DURATION = 600.0


def run(adaptive: bool):
    net = SensorNetwork(Topology.line(4, spacing=15.0), seed=9)
    sources = [
        RateAdaptingSource(net.api(i), TASK, default_interval=0.3,
                           min_interval=0.3)
        for i in (1, 2, 3)
    ]
    sink = None
    received = []
    if adaptive:
        sink = AdaptiveSink(
            net.api(0), TASK,
            initial_interval_ms=300,
            min_interval_ms=300,
            epoch=30.0,
            back_off_loss=0.3,
        )
    else:
        net.api(0).subscribe(
            AttributeVector.builder()
            .eq(Key.TYPE, TASK)
            .actual(Key.INTERVAL, 300)
            .build(),
            lambda attrs, msg: received.append(attrs),
        )
    net.run(until=DURATION)
    sent = sum(s.events_sent for s in sources)
    got = sink.events_received if adaptive else len(received)
    return sent, got, sink


def main() -> None:
    for adaptive in (False, True):
        sent, got, sink = run(adaptive)
        label = "adaptive  " if adaptive else "fixed rate"
        print(f"{label}: {got}/{sent} events delivered "
              f"({got / max(1, sent):.0%} of offered load)")
        if sink is not None:
            print("   controller trajectory (interval per epoch):")
            for stats in sink.history:
                bar = "#" * round(stats.loss * 30)
                print(
                    f"     t={stats.time:5.0f}s interval={stats.interval_ms:>6}ms "
                    f"loss={stats.loss:4.0%} {bar}"
                )
    print(
        "\nBacking off wastes fewer transmissions on collisions, so a "
        "larger fraction of what is sent arrives — the feedback loop the "
        "paper's Section 6.4 calls for."
    )


if __name__ == "__main__":
    main()
