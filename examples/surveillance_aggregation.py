#!/usr/bin/env python3
"""In-network aggregation on the ISI testbed (paper Sections 5.1, 6.1).

Runs the Figure 8 surveillance workload — sink at node 28, four sources
reporting the same synchronized detections — once with the suppression
filter on every node and once without, then prints the traffic saved.
A short (10-minute) single-trial version of the experiment; the full
five-trial, 30-minute sweep lives in ``benchmarks/test_fig8_aggregation``.

Run:  python examples/surveillance_aggregation.py
"""

from repro.apps import SurveillanceExperiment
from repro.testbed import (
    FIG8_SINK,
    FIG8_SOURCES,
    format_testbed_map,
    isi_testbed_network,
)


def main() -> None:
    print(format_testbed_map())
    print()
    duration = 600.0
    results = {}
    for suppression in (True, False):
        network = isi_testbed_network(seed=42)
        experiment = SurveillanceExperiment(
            network,
            sink_id=FIG8_SINK,
            source_ids=FIG8_SOURCES,
            suppression=suppression,
        )
        results[suppression] = experiment.run(duration=duration)

    print(f"ISI testbed, 4 sources -> sink {FIG8_SINK}, {duration/60:.0f} minutes\n")
    for suppression in (True, False):
        r = results[suppression]
        label = "with suppression   " if suppression else "without suppression"
        print(
            f"{label}: {r.diffusion_bytes_sent:>8} bytes total, "
            f"{r.distinct_events_received:>3}/{r.events_generated} distinct events "
            f"-> {r.bytes_per_event:7.0f} B/event"
        )
    saved = 1.0 - (
        results[True].bytes_per_event / results[False].bytes_per_event
    )
    print(f"\ntraffic saved by in-network aggregation: {saved:.0%}")
    print("(the paper reports up to 42% at four sources)")


if __name__ == "__main__":
    main()
