#!/usr/bin/env python3
"""Nested vs flat queries on the ISI testbed (paper Sections 5.2, 6.2).

A user at node 39 wants audio correlated with light changes.  In the
nested (two-level) query the audio node at 20 sub-tasks the light
sensors itself; in the flat (one-level) query every light report must
cross the network to the user, who then interrogates the audio sensor.
Prints the Figure 9 metric — % of light changes that result in audio
data at the user — for both shapes.

Run:  python examples/nested_queries.py
"""

from repro.apps import NestedQueryExperiment
from repro.testbed import (
    FIG9_AUDIO,
    FIG9_LIGHTS,
    FIG9_USER,
    isi_testbed_network,
)


def main() -> None:
    duration = 600.0
    print(
        f"user at {FIG9_USER}, audio at {FIG9_AUDIO}, "
        f"lights at {list(FIG9_LIGHTS)}; {duration/60:.0f}-minute run\n"
    )
    for nested in (True, False):
        network = isi_testbed_network(seed=42)
        experiment = NestedQueryExperiment(
            network,
            user_id=FIG9_USER,
            audio_id=FIG9_AUDIO,
            light_ids=FIG9_LIGHTS,
            nested=nested,
        )
        result = experiment.run(duration=duration)
        label = "nested (2-level)" if nested else "flat (1-level)  "
        print(
            f"{label}: {result.successful_events:>2}/{result.possible_events} "
            f"changes delivered = {result.delivery_percentage:5.1f}%   "
            f"({result.diffusion_bytes_sent} diffusion bytes)"
        )
    print(
        "\nNesting localizes light traffic near the audio sensor instead of "
        "hauling it across the congested middle of the network; the paper "
        "reports 15-30% lower loss for nested queries."
    )


if __name__ == "__main__":
    main()
