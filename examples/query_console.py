#!/usr/bin/env python3
"""Declarative queries over the sensor network (paper Section 5.3).

The Cornell/COUGAR integration put a database-style front end over
diffusion.  This example runs three queries against the ISI testbed —
the animal-tracking query of Section 3.2 expressed as SQL-ish text —
and prints the rows that come back.

Run:  python examples/query_console.py
"""

from repro import AttributeVector, Key
from repro.query import QueryProxy
from repro.testbed import isi_testbed_network

USER_NODE = 39
SENSOR_NODES = (25, 16, 22, 13, 20)

QUERIES = [
    # Everything the detection sensors say.
    "SELECT detection EVERY 5s FOR 4m",
    # Only confident detections in the lights' corner of the building.
    "SELECT detection WHERE x BETWEEN 0 AND 20 AND confidence > 0.6 FOR 4m",
    # A target-specific query.
    "SELECT detection WHERE target = '4-leg' AND confidence > 0.8 FOR 4m",
]


def deploy_sensors(net):
    """Each sensor node publishes detections with its position."""
    import random

    rng = random.Random(99)
    for node_id in SENSOR_NODES:
        position = net.topology.position(node_id)
        pub = net.api(node_id).publish(
            AttributeVector.builder()
            .actual(Key.TYPE, "detection")
            .actual(Key.X_COORD, position.x)
            .actual(Key.Y_COORD, position.y)
            .build()
        )

        def report(node_id=node_id, pub=pub, seq=[0]):
            confidence = 0.4 + 0.6 * rng.random()
            target = rng.choice(["4-leg", "2-leg"])
            net.api(node_id).send(
                pub,
                AttributeVector.builder()
                .actual(Key.CONFIDENCE, confidence)
                .actual(Key.TARGET, target)
                .actual(Key.SEQUENCE, seq[0])
                .build(),
            )
            seq[0] += 1
            net.sim.schedule(5.0, report)

        net.sim.schedule(2.0 + node_id * 0.1, report)


def main() -> None:
    net = isi_testbed_network(seed=31)
    deploy_sensors(net)
    proxy = QueryProxy(net.api(USER_NODE))
    handles = [proxy.submit(q) for q in QUERIES]
    net.run(until=240.0)

    for query_text, handle in zip(QUERIES, handles):
        print(f"> {query_text}")
        print(f"  {handle.row_count} rows; first 3:")
        for row in handle.results[:3]:
            fields = ", ".join(
                f"{k}={v if not isinstance(v, float) else round(v, 2)}"
                for k, v in sorted(row.values.items())
                if k in ("x", "y", "confidence", "target", "sequence")
            )
            print(f"    t={row.time:6.1f}s  {fields}")
        print()
    print(
        "Note the narrowing: geographic and confidence formals are "
        "evaluated by matching at the sensors, so non-matching data "
        "never leaves its node."
    )


if __name__ == "__main__":
    main()
