#!/usr/bin/env python3
"""Quickstart: the Figure 1 life cycle of a directed-diffusion query.

Builds a five-node line network on the simulated radio stack, walks
through the three phases of the paper's Figure 1 —

  (a) interest propagation,
  (b) gradient setup,
  (c) data delivery along the reinforced path —

and prints what the network state looks like after each.

Run:  python examples/quickstart.py
"""

from repro import AttributeVector, Key, MessageType
from repro.radio import Topology
from repro.testbed import SensorNetwork


def main() -> None:
    # Five nodes in a line, 15 m apart; node 0 is the sink (user), node
    # 4 the source (sensor).
    net = SensorNetwork(Topology.line(5, spacing=15.0), seed=7)
    sink, source = net.api(0), net.api(4)

    received = []
    subscription = (
        AttributeVector.builder()
        .eq(Key.TYPE, "four-legged-animal-search")
        .actual(Key.INTERVAL, 1000)
        .build()
    )
    sink.subscribe(subscription, lambda attrs, msg: received.append((net.sim.now, attrs)))

    # --- phase (a)+(b): the interest floods and sets up gradients -----
    net.run(until=2.0)
    print("after interest propagation (t=2s):")
    for node_id in net.node_ids():
        entries = net.node(node_id).gradients.entries()
        neighbors = entries[0].active_gradient_neighbors(net.sim.now) if entries else []
        print(f"  node {node_id}: gradients toward {neighbors}")

    # --- the source starts reporting ----------------------------------
    publication = source.publish(
        AttributeVector.builder().actual(Key.TYPE, "four-legged-animal-search").build()
    )
    for i in range(8):
        net.sim.schedule(
            3.0 + i,
            source.send,
            publication,
            AttributeVector.builder()
            .actual(Key.INSTANCE, "elephant")
            .actual(Key.SEQUENCE, i)
            .actual(Key.CONFIDENCE, 0.85)
            .build(),
        )
    net.run(until=15.0)

    # --- phase (c): reinforced delivery --------------------------------
    print("\nafter data delivery (t=15s):")
    print(f"  events delivered at sink: {len(received)}")
    for when, attrs in received[:3]:
        print(
            f"    t={when:6.2f}s  seq={attrs.value_of(Key.SEQUENCE)}"
            f"  instance={attrs.value_of(Key.INSTANCE)!r}"
            f"  confidence={attrs.value_of(Key.CONFIDENCE)}"
        )
    print("\nper-node transmissions by message class:")
    for node_id in net.node_ids():
        stats = net.node(node_id).stats
        row = ", ".join(
            f"{t.name.lower()}={stats.messages_by_type[t]}"
            for t in MessageType
            if stats.messages_by_type[t]
        )
        print(f"  node {node_id}: {row or 'silent'}")
    print(
        "\nNote how after the first exploratory message the relays carry "
        "plain DATA unicast on the reinforced path — Figure 1(c)."
    )


if __name__ == "__main__":
    main()
